// 2-D complex FFT on row-major buffers, plus fftshift helpers and frequency
// coordinates. Operates on raw pointers so the FFT layer stays independent of
// the tensor module; optics wraps it for Field objects.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft_plan.hpp"

namespace odonn::fft {

/// In-place 2-D FFT of a rows x cols row-major buffer: 1-D transforms over
/// every row, then every column. Parallelized across rows/columns when
/// called from a non-worker thread.
void transform_2d(Cplx* data, std::size_t rows, std::size_t cols,
                  Direction dir);

/// Swaps quadrants so the zero-frequency bin moves to the center
/// (fftshift) or back (ifftshift). For odd sizes the two differ.
void fftshift_2d(Cplx* data, std::size_t rows, std::size_t cols);
void ifftshift_2d(Cplx* data, std::size_t rows, std::size_t cols);

/// FFT sample frequencies in cycles per unit, matching numpy.fft.fftfreq:
/// [0, 1, ..., n/2-1, -n/2, ..., -1] / (n * spacing).
std::vector<double> fft_freqs(std::size_t n, double spacing);

}  // namespace odonn::fft

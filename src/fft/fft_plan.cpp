#include "fft/fft_plan.hpp"

#include <cmath>
#include "common/thread_annotations.hpp"
#include <unordered_map>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace odonn::fft {

namespace {

/// Thread-local scratch so concurrent executes never contend or allocate
/// after warm-up.
std::vector<Cplx>& scratch(std::size_t n) {
  thread_local std::vector<Cplx> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

std::vector<std::size_t> bit_reverse_permutation(std::size_t n) {
  std::vector<std::size_t> rev(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) {
      r = (r << 1) | ((i >> b) & 1U);
    }
    rev[i] = r;
  }
  return rev;
}

std::vector<Cplx> radix2_twiddles(std::size_t n) {
  std::vector<Cplx> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -2.0 * M_PI * static_cast<double>(k) /
                         static_cast<double>(n);
    tw[k] = Cplx(std::cos(angle), std::sin(angle));
  }
  return tw;
}

std::size_t next_pow2(std::size_t n) {
  ODONN_CHECK(n >= 1, "next_pow2 requires n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

Plan::Plan(std::size_t n) : n_(n) {
  ODONN_CHECK(n >= 1, "FFT length must be >= 1");
  if (is_pow2(n)) {
    conv_n_ = n;
    if (n > 1) {
      twiddles_ = radix2_twiddles(n);
      bit_reverse_ = bit_reverse_permutation(n);
    }
    return;
  }

  // Bluestein setup: convolution length m >= 2n-1, power of two.
  conv_n_ = next_pow2(2 * n - 1);
  twiddles_ = radix2_twiddles(conv_n_);
  bit_reverse_ = bit_reverse_permutation(conv_n_);

  bluestein_a_.resize(n);
  std::vector<Cplx> b(conv_n_, Cplx(0.0, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    // Reduce j^2 mod 2n before converting to an angle: keeps the chirp phase
    // accurate for large n.
    const std::size_t j2 = (j * j) % (2 * n);
    const double angle = M_PI * static_cast<double>(j2) / static_cast<double>(n);
    bluestein_a_[j] = Cplx(std::cos(angle), -std::sin(angle));  // e^{-i pi j^2/n}
    const Cplx bj = std::conj(bluestein_a_[j]);                 // e^{+i pi j^2/n}
    b[j] = bj;
    if (j != 0) b[conv_n_ - j] = bj;
  }
  pow2_transform(b.data(), conv_n_, /*inverse=*/false);
  bluestein_b_fft_ = std::move(b);
}

void Plan::pow2_transform(Cplx* data, std::size_t n, bool inverse) const {
  if (n <= 1) return;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t stride = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Cplx w = twiddles_[k * stride];
        if (inverse) w = std::conj(w);
        const Cplx even = data[base + k];
        const Cplx odd = data[base + k + half] * w;
        data[base + k] = even + odd;
        data[base + k + half] = even - odd;
      }
    }
  }
}

void Plan::bluestein_forward(Cplx* data) const {
  const std::size_t m = conv_n_;
  auto& u = scratch(m);
  for (std::size_t j = 0; j < n_; ++j) u[j] = data[j] * bluestein_a_[j];
  for (std::size_t j = n_; j < m; ++j) u[j] = Cplx(0.0, 0.0);

  pow2_transform(u.data(), m, /*inverse=*/false);
  for (std::size_t j = 0; j < m; ++j) u[j] *= bluestein_b_fft_[j];
  pow2_transform(u.data(), m, /*inverse=*/true);

  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n_; ++k) {
    data[k] = u[k] * scale * bluestein_a_[k];
  }
}

void Plan::execute(Cplx* data, Direction dir) const {
  if (n_ == 1) return;
  if (!uses_bluestein()) {
    pow2_transform(data, n_, dir == Direction::Inverse);
    if (dir == Direction::Inverse) {
      const double scale = 1.0 / static_cast<double>(n_);
      for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
    }
    return;
  }

  if (dir == Direction::Forward) {
    bluestein_forward(data);
    return;
  }
  // Inverse via conjugation: ifft(x) = conj(fft(conj(x))) / n.
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]);
  bluestein_forward(data);
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]) * scale;
}

void Plan::execute(std::span<Cplx> data, Direction dir) const {
  ODONN_CHECK_SHAPE(data.size() == n_,
                    "FFT buffer length does not match plan size");
  execute(data.data(), dir);
}

namespace {

struct PlanCache {
  Mutex mutex;
  std::unordered_map<std::size_t, std::shared_ptr<const Plan>> plans
      ODONN_GUARDED_BY(mutex);
  std::uint64_t hits ODONN_GUARDED_BY(mutex) = 0;
  std::uint64_t misses ODONN_GUARDED_BY(mutex) = 0;
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const Plan> plan_for(std::size_t n) {
  PlanCache& cache = plan_cache();
  MutexLock lock(cache.mutex);
  auto it = cache.plans.find(n);
  if (it != cache.plans.end()) {
    ++cache.hits;
    ODONN_OBS_COUNT("fft.plan_cache.hits", 1);
    return it->second;
  }
  ++cache.misses;
  ODONN_OBS_COUNT("fft.plan_cache.misses", 1);
  auto plan = std::make_shared<const Plan>(n);
  cache.plans.emplace(n, plan);
  ODONN_OBS_GAUGE_SET("fft.plan_cache.lengths", cache.plans.size());
  return plan;
}

PlanCacheStats plan_cache_stats() {
  PlanCache& cache = plan_cache();
  MutexLock lock(cache.mutex);
  return {cache.plans.size(), cache.hits, cache.misses};
}

void transform(std::span<Cplx> data, Direction dir) {
  plan_for(data.size())->execute(data, dir);
}

}  // namespace odonn::fft

// Learning-rate schedules (constant / step decay / cosine).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace odonn::train {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate for the given zero-based epoch.
  virtual double at(std::size_t epoch) const = 0;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(double lr);
  double at(std::size_t epoch) const override;

 private:
  double lr_;
};

class StepDecayLr final : public LrSchedule {
 public:
  /// lr * gamma^(epoch / period)
  StepDecayLr(double lr, double gamma, std::size_t period);
  double at(std::size_t epoch) const override;

 private:
  double lr_, gamma_;
  std::size_t period_;
};

class CosineLr final : public LrSchedule {
 public:
  /// Cosine anneal from lr to lr_min across total_epochs.
  CosineLr(double lr, double lr_min, std::size_t total_epochs);
  double at(std::size_t epoch) const override;

 private:
  double lr_, lr_min_;
  std::size_t total_;
};

std::unique_ptr<LrSchedule> make_schedule(const std::string& name, double lr,
                                          std::size_t total_epochs);

}  // namespace odonn::train

// Mini-batch trainer for DonnModel with the paper's regularizers and the
// SLR/ADMM compression hooks.
//
// Per batch:  grad = (1/B) sum_samples dLoss/dphi            (batch-parallel)
//           + p * dR(W)/dW + q * dR_intra(W)/dW              (Eq. 5 / Eq. 8)
//           + dPenalty/dW from the SLR or ADMM state (if attached)
// then masked-gradient zeroing (if sparsity masks are frozen), optimizer
// step, and mask re-application. Compression rounds (Z-step + multiplier
// updates) run a fixed number of times per epoch.
//
// Images are expected to be pre-resized to the optical grid (use
// data::resize_dataset); encoding to a coherent field happens on the fly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "donn/crosstalk.hpp"
#include "donn/model.hpp"
#include "roughness/intra_block.hpp"
#include "roughness/roughness.hpp"
#include "slr/admm.hpp"
#include "slr/slr.hpp"
#include "train/optim.hpp"

namespace odonn::train {

struct RegularizerOptions {
  /// Eq. 5 factor p (0 disables). The trainer normalizes R(W) per pixel, so
  /// p is grid-size invariant: the paper's published inflection point
  /// p ~ 0.1 (Fig. 6c) applies unchanged at reduced CPU scales.
  double roughness_p = 0.0;
  /// Eq. 8 factor q (0 disables); R_intra is normalized per block for the
  /// same reason (paper inflection at log q = 1, Fig. 6d).
  double intra_q = 0.0;
  roughness::RoughnessOptions roughness = {};
  roughness::IntraBlockOptions intra = {};
};

struct TrainOptions {
  std::size_t epochs = 5;
  std::size_t batch_size = 200;  ///< paper batch size
  double lr = 0.2;               ///< paper baseline lr (Adam)
  std::string optimizer = "adam";
  std::string schedule = "constant";
  donn::LossOptions loss = {};
  optics::EncodeOptions encode = {};
  RegularizerOptions reg = {};
  /// When enabled, each epoch trains on a freshly augmented copy of the
  /// training set (random affine + noise, data/augment.hpp).
  bool augment = false;
  data::AugmentOptions augment_options = {};
  std::uint64_t seed = 7;
  /// Optional compression state; at most one may be attached.
  slr::SlrState* slr = nullptr;
  slr::AdmmState* admm = nullptr;
  std::size_t compress_rounds_per_epoch = 4;
  bool verbose = false;
};

struct EpochStats {
  double data_loss = 0.0;      ///< mean per-sample loss
  double reg_loss = 0.0;       ///< p*R + q*R_intra at epoch end
  double penalty_loss = 0.0;   ///< SLR/ADMM penalty at epoch end
  double train_accuracy = 0.0;
};

class Trainer {
 public:
  /// `train` images must already match the model grid.
  Trainer(donn::DonnModel& model, const data::Dataset& train,
          const TrainOptions& options);

  /// One full pass over the training set.
  EpochStats run_epoch();

  /// All configured epochs; returns per-epoch stats.
  std::vector<EpochStats> run();

  const TrainOptions& options() const { return options_; }

 private:
  void compress_round(double surrogate_loss);

  donn::DonnModel& model_;
  const data::Dataset& train_;
  TrainOptions options_;
  std::unique_ptr<Optimizer> optimizer_;
  Rng rng_;
  std::size_t epoch_ = 0;
};

/// Test-set accuracy of a model (batch-parallel). Images must match the
/// model grid.
double evaluate_accuracy(const donn::DonnModel& model,
                         const data::Dataset& test,
                         const optics::EncodeOptions& encode = {});

/// Accuracy with every phase mask passed through the interpixel-crosstalk
/// deployment model first (DESIGN.md §2) — the "physical deployment" column.
double evaluate_deployed_accuracy(const donn::DonnModel& model,
                                  const data::Dataset& test,
                                  const donn::CrosstalkOptions& crosstalk,
                                  const optics::EncodeOptions& encode = {});

}  // namespace odonn::train

// Mini-batch trainer for DonnModel with the paper's regularizers, the
// SLR/ADMM compression hooks and noise-in-the-loop robust training.
//
// Per batch:  grad = (1/(B*K)) sum_k sum_samples dLoss_k/dphi
//             (K = 1 clean, K = robust.realizations fabricated devices)
//           + p * dR(W)/dW + q * dR_intra(W)/dW              (Eq. 5 / Eq. 8)
//           + dPenalty/dW from the SLR or ADMM state (if attached)
// then masked-gradient zeroing (if sparsity masks are frozen), optimizer
// step, and mask re-application. Compression rounds (Z-step + multiplier
// updates) run a fixed number of times per epoch.
//
// Robust mode (RobustTrainOptions): each step samples K fabrication
// realizations of the current device via counter-based fab streams, runs
// forward/backward through the PERTURBED deployments and applies the
// averaged gradient to the clean phases (the straight-through
// weight-noise-injection estimator), so the optimizer descends the
// EXPECTED fabricated loss instead of the clean loss.
//
// Determinism contract: gradient accumulation uses a FIXED number of
// reduction slices (not the pool size), so for a given seed the trained
// model is bitwise independent of ODONN_THREADS and of scheduling — the
// same contract the Monte-Carlo evaluator gives for reports.
//
// Images are expected to be pre-resized to the optical grid (use
// data::resize_dataset); encoding to a coherent field happens on the fly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "donn/crosstalk.hpp"
#include "donn/model.hpp"
#include "fab/perturbation.hpp"
#include "roughness/intra_block.hpp"
#include "roughness/roughness.hpp"
#include "slr/admm.hpp"
#include "slr/slr.hpp"
#include "train/optim.hpp"

namespace odonn::train {

struct RegularizerOptions {
  /// Eq. 5 factor p (0 disables). The trainer normalizes R(W) per pixel, so
  /// p is grid-size invariant: the paper's published inflection point
  /// p ~ 0.1 (Fig. 6c) applies unchanged at reduced CPU scales.
  double roughness_p = 0.0;
  /// Eq. 8 factor q (0 disables); R_intra is normalized per block for the
  /// same reason (paper inflection at log q = 1, Fig. 6d).
  double intra_q = 0.0;
  roughness::RoughnessOptions roughness = {};
  roughness::IntraBlockOptions intra = {};
};

/// Noise-in-the-loop robust training: optimize the expected FABRICATED
/// loss by sampling fabrication-variability realizations inside the
/// training loop (complementing the Eq. 5/8 roughness regularizers, which
/// only shape the clean masks). Enabled by a non-null perturbation stack.
struct RobustTrainOptions {
  /// Non-owning; non-null enables robust training. Must outlive the run.
  const fab::PerturbationStack* stack = nullptr;
  /// K: fabricated-device samples averaged into every gradient step.
  std::size_t realizations = 2;
  /// Mirrored realization pairs (fab::realization_rng): the pair mean
  /// cancels the loss's linear response to the perturbation, reducing
  /// gradient-estimator variance at equal K. Requires an even K (enforced
  /// by the Trainer) so pairs never straddle a step boundary.
  bool antithetic = true;
  /// Sample the K noise draws once per EPOCH (re-applied to the evolving
  /// phases every batch) instead of fresh draws per batch.
  bool per_epoch = false;
  /// Deploy each realization through the interpixel-crosstalk emulation.
  /// For ADDITIVE noise (roughness GRF, detune, misalignment) the straight
  /// -through gradient is an unbiased estimator of the expected fabricated
  /// loss; through the roughness-gated crosstalk blur it acquires a bias
  /// that can dominate the update (the blur rides on the injected GRF),
  /// so the default trains through the noise only and leaves the full
  /// deployment path to evaluation.
  bool deploy_crosstalk = false;
  donn::CrosstalkOptions crosstalk = {};
  /// Base of the counter-based realization stream (independent of the
  /// shuffle/augment/init streams).
  std::uint64_t seed = 7;
  /// Stream counter to start from: checkpointed runs persist
  /// Trainer::realizations_sampled() and continue the identical stream.
  std::uint64_t counter_start = 0;
};

struct TrainOptions {
  std::size_t epochs = 5;
  std::size_t batch_size = 200;  ///< paper batch size
  double lr = 0.2;               ///< paper baseline lr (Adam)
  std::string optimizer = "adam";
  std::string schedule = "constant";
  donn::LossOptions loss = {};
  optics::EncodeOptions encode = {};
  RegularizerOptions reg = {};
  /// When enabled, each epoch trains on a freshly augmented copy of the
  /// training set (random affine + noise, data/augment.hpp).
  bool augment = false;
  data::AugmentOptions augment_options = {};
  std::uint64_t seed = 7;
  /// Optional compression state; at most one may be attached.
  slr::SlrState* slr = nullptr;
  slr::AdmmState* admm = nullptr;
  std::size_t compress_rounds_per_epoch = 4;
  /// Noise-in-the-loop robust training (stack != nullptr enables).
  RobustTrainOptions robust = {};
  bool verbose = false;
};

struct EpochStats {
  /// Mean per-sample loss; in robust mode the mean over samples AND the K
  /// realizations — the expected fabricated loss being minimized.
  double data_loss = 0.0;
  double reg_loss = 0.0;       ///< p*R + q*R_intra at epoch end
  double penalty_loss = 0.0;   ///< SLR/ADMM penalty at epoch end
  /// Training accuracy; in robust mode the expected fabricated accuracy.
  double train_accuracy = 0.0;
};

class Trainer {
 public:
  /// `train` images must already match the model grid.
  Trainer(donn::DonnModel& model, const data::Dataset& train,
          const TrainOptions& options);

  /// One full pass over the training set.
  EpochStats run_epoch();

  /// All configured epochs; returns per-epoch stats.
  std::vector<EpochStats> run();

  const TrainOptions& options() const { return options_; }

  /// Total fabrication realizations drawn from the robust stream so far
  /// (counter_start included). Serialize this to resume the stream: a
  /// continuation run with counter_start = realizations_sampled() draws
  /// exactly the realizations an uninterrupted run would have.
  std::uint64_t realizations_sampled() const { return realization_counter_; }

 private:
  void compress_round(double surrogate_loss);

  donn::DonnModel& model_;
  const data::Dataset& train_;
  TrainOptions options_;
  std::unique_ptr<Optimizer> optimizer_;
  Rng rng_;
  std::size_t epoch_ = 0;
  std::uint64_t realization_counter_ = 0;
};

/// Test-set accuracy of a model (batch-parallel). Images must match the
/// model grid.
double evaluate_accuracy(const donn::DonnModel& model,
                         const data::Dataset& test,
                         const optics::EncodeOptions& encode = {});

/// Accuracy with every phase mask passed through the interpixel-crosstalk
/// deployment model first (DESIGN.md §2) — the "physical deployment" column.
double evaluate_deployed_accuracy(const donn::DonnModel& model,
                                  const data::Dataset& test,
                                  const donn::CrosstalkOptions& crosstalk,
                                  const optics::EncodeOptions& encode = {});

}  // namespace odonn::train

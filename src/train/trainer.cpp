#include "train/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"
#include "optics/encode.hpp"
#include "train/schedule.hpp"

namespace odonn::train {

namespace {

void check_dataset(const donn::DonnModel& model, const data::Dataset& ds,
                   const char* what) {
  ODONN_CHECK(!ds.empty(), std::string(what) + ": empty dataset");
  ODONN_CHECK_SHAPE(ds.image(0).rows() == model.config().grid.n &&
                        ds.image(0).cols() == model.config().grid.n,
                    std::string(what) +
                        ": images must be pre-resized to the model grid");
  ODONN_CHECK(ds.num_classes() == model.config().num_classes,
              std::string(what) + ": class count mismatch");
}

/// Deterministic batch-parallel accumulation: the batch is cut into a fixed
/// number of slices; each slice owns a private gradient set; slices are
/// reduced in index order.
struct SliceAccumulator {
  std::vector<std::vector<MatrixD>> grads;
  std::vector<double> losses;
  std::vector<std::size_t> correct;

  SliceAccumulator(std::size_t slices, const donn::DonnModel& model)
      : grads(slices), losses(slices, 0.0), correct(slices, 0) {
    for (auto& g : grads) g = model.zero_gradients();
  }
};

/// Reduction-slice count. FIXED (not thread_count()) so the accumulation
/// layout — which samples share a partial sum, and the order partials are
/// reduced in — is a pure function of the configuration: trained models
/// are bitwise independent of ODONN_THREADS. 32 keeps every realistic pool
/// busy while bounding the per-batch scratch to 32 gradient sets.
constexpr std::size_t kGradientSlices = 32;

}  // namespace

Trainer::Trainer(donn::DonnModel& model, const data::Dataset& train,
                 const TrainOptions& options)
    : model_(model), train_(train), options_(options), rng_(options.seed),
      realization_counter_(options.robust.counter_start) {
  check_dataset(model, train, "trainer");
  ODONN_CHECK(options.batch_size >= 1, "trainer: batch_size must be >= 1");
  ODONN_CHECK(!(options.slr && options.admm),
              "trainer: attach at most one compression state");
  if (options.robust.stack != nullptr) {
    ODONN_CHECK(options.robust.realizations >= 1,
                "trainer: robust training needs at least one realization");
    // Odd K — or resuming at an odd stream counter — would straddle pair
    // boundaries across steps (the mirror of a step's last realization
    // lands in the NEXT step, against different phases), silently
    // degrading to plain sampling — reject instead.
    ODONN_CHECK(!options.robust.antithetic ||
                    options.robust.realizations % 2 == 0,
                "trainer: antithetic robust training needs an even number "
                "of realizations (or set antithetic=0)");
    ODONN_CHECK(!options.robust.antithetic ||
                    options.robust.counter_start % 2 == 0,
                "trainer: antithetic robust training must resume at an "
                "even realization counter (stream from a plain odd-K run "
                "cannot be pair-aligned)");
  }
  optimizer_ = make_optimizer(options.optimizer, options.lr);
}

void Trainer::compress_round(double surrogate_loss) {
  if (options_.slr != nullptr) {
    options_.slr->round(model_.phases(), surrogate_loss);
  } else if (options_.admm != nullptr) {
    options_.admm->round(model_.phases());
  }
}

EpochStats Trainer::run_epoch() {
  ODONN_OBS_SPAN(epoch_span, "train.epoch");
  ODONN_OBS_COUNT("train.epochs", 1);
  // Epoch-wise augmentation: train this pass on a freshly jittered copy.
  data::Dataset augmented;
  const data::Dataset& epoch_data =
      options_.augment
          ? (augmented = data::augment_dataset(train_, rng_,
                                               options_.augment_options),
             augmented)
          : train_;

  const std::size_t count = epoch_data.size();
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order);

  const bool robust = options_.robust.stack != nullptr;
  const std::size_t realizations = robust ? options_.robust.realizations : 1;
  // Slot layout: `realizations` blocks of `slices` reduction slices each.
  // Both factors are pure functions of the configuration (kGradientSlices
  // is a constant, never thread_count()), so partial-sum membership and
  // reduction order — hence the trained model — are bitwise independent of
  // ODONN_THREADS.
  const std::size_t slices =
      robust ? std::max<std::size_t>(1, kGradientSlices / realizations)
             : kGradientSlices;
  const std::size_t slots = realizations * slices;
  const std::size_t batches = (count + options_.batch_size - 1) / options_.batch_size;
  const std::size_t rounds = std::max<std::size_t>(1, options_.compress_rounds_per_epoch);
  const std::size_t round_every = std::max<std::size_t>(1, batches / rounds);

  double epoch_loss = 0.0;
  std::size_t epoch_correct = 0;
  double last_surrogate = 0.0;

  // Per-epoch resampling: the K noise streams are pinned at epoch start
  // and re-applied to the evolving phases every batch; per-batch mode
  // draws fresh streams each step.
  std::uint64_t realization_base = realization_counter_;
  if (robust && options_.robust.per_epoch) {
    realization_counter_ += realizations;
    ODONN_OBS_COUNT("train.robust_realizations", realizations);
  }

  for (std::size_t batch = 0; batch < batches; ++batch) {
    const std::size_t begin = batch * options_.batch_size;
    const std::size_t end = std::min(count, begin + options_.batch_size);
    const std::size_t batch_count = end - begin;

    // Realize the K fabricated deployments of the CURRENT phases. Stream k
    // is a pure function of (robust.seed, realization index), so the
    // devices are reproducible, resume-safe via the counter, and safe to
    // generate in parallel (each slot written exactly once).
    std::vector<std::unique_ptr<donn::DonnModel>> realized;
    if (robust) {
      if (!options_.robust.per_epoch) {
        realization_base = realization_counter_;
        realization_counter_ += realizations;
        ODONN_OBS_COUNT("train.robust_realizations", realizations);
      }
      realized.resize(realizations);
      parallel_for(0, realizations, [&](std::size_t k) {
        Rng stream = fab::realization_rng(
            options_.robust.seed, realization_base + k,
            options_.robust.antithetic);
        realized[k] = std::make_unique<donn::DonnModel>(fab::realize_device(
            model_, *options_.robust.stack, options_.robust.crosstalk,
            options_.robust.deploy_crosstalk, stream));
      });
    }

    // Robust mode encodes the batch once up front: the input field depends
    // only on (sample, grid, encode), never the realization, so the K
    // realization blocks share it instead of re-encoding K times. The
    // clean path (K = 1, each sample visited once) keeps encoding inline
    // to avoid holding a batch of fields at paper-scale grids.
    std::vector<optics::Field> batch_inputs;
    if (robust) {
      batch_inputs.resize(batch_count);
      parallel_for(0, batch_count, [&](std::size_t i) {
        batch_inputs[i] = optics::encode_image(
            epoch_data.image(order[begin + i]), model_.config().grid,
            options_.encode);
      });
    }

    SliceAccumulator acc(slots, model_);
    parallel_for(0, slots, [&](std::size_t slot) {
      const auto slot_start = std::chrono::steady_clock::now();
      // Gradients flow through the perturbed deployment but are applied to
      // the clean phases below — the straight-through weight-noise-
      // injection estimator of the expected fabricated loss.
      const donn::DonnModel& net = robust ? *realized[slot / slices] : model_;
      const std::size_t s = slot % slices;
      for (std::size_t i = begin + s; i < end; i += slices) {
        const std::size_t idx = order[i];
        optics::Field encoded;
        if (!robust) {
          encoded = optics::encode_image(epoch_data.image(idx),
                                         model_.config().grid,
                                         options_.encode);
        }
        const optics::Field& input =
            robust ? batch_inputs[i - begin] : encoded;
        const auto result = net.forward_backward(
            input, epoch_data.label(idx), acc.grads[slot], options_.loss);
        acc.losses[slot] += result.loss;
        if (result.predicted == epoch_data.label(idx)) ++acc.correct[slot];
      }
      ODONN_OBS_HIST("train.grad_slice_ms",
                     std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - slot_start)
                         .count());
    });

    // Reduce slots in index order (realization-major; bitwise identical
    // for any thread count).
    auto grads = std::move(acc.grads[0]);
    double batch_loss = acc.losses[0];
    std::size_t batch_correct = acc.correct[0];
    for (std::size_t s = 1; s < slots; ++s) {
      for (std::size_t l = 0; l < grads.size(); ++l) grads[l] += acc.grads[s][l];
      batch_loss += acc.losses[s];
      batch_correct += acc.correct[s];
    }
    const double inv_batch =
        1.0 / static_cast<double>(batch_count * realizations);
    for (auto& g : grads) g *= inv_batch;

    // Regularizers (functions of the weights, added once per batch).
    // Normalized per pixel / per block so the factors p, q are independent
    // of the grid size (see RegularizerOptions).
    double reg_value = 0.0;
    auto& phases = model_.phases();
    for (std::size_t l = 0; l < phases.size(); ++l) {
      if (options_.reg.roughness_p > 0.0) {
        const double scale = options_.reg.roughness_p /
                             static_cast<double>(phases[l].size());
        reg_value += scale *
                     roughness::roughness_with_grad(phases[l], grads[l],
                                                    scale,
                                                    options_.reg.roughness);
      }
      if (options_.reg.intra_q > 0.0) {
        const std::size_t b = options_.reg.intra.block_size;
        const std::size_t blocks = ((phases[l].rows() + b - 1) / b) *
                                   ((phases[l].cols() + b - 1) / b);
        const double scale =
            options_.reg.intra_q / static_cast<double>(blocks);
        reg_value += scale * roughness::intra_block_variance_with_grad(
                                 phases[l], grads[l], scale,
                                 options_.reg.intra);
      }
    }

    // Compression penalty.
    double penalty = 0.0;
    if (options_.slr != nullptr) {
      penalty = options_.slr->penalty_value(phases);
      options_.slr->add_penalty_gradient(phases, grads);
    } else if (options_.admm != nullptr) {
      penalty = options_.admm->penalty_value(phases);
      options_.admm->add_penalty_gradient(phases, grads);
    }

    model_.mask_gradients(grads);
    optimizer_->step(phases, grads);
    model_.apply_masks();

    epoch_loss += batch_loss;
    epoch_correct += batch_correct;
    last_surrogate = batch_loss * inv_batch + reg_value + penalty;
    if ((options_.slr != nullptr || options_.admm != nullptr) &&
        (batch + 1) % round_every == 0) {
      compress_round(last_surrogate);
    }
  }

  ++epoch_;

  EpochStats stats;
  // In robust mode these are means over the K realizations as well: the
  // expected fabricated loss / accuracy the optimizer actually descends.
  stats.data_loss =
      epoch_loss / static_cast<double>(count * realizations);
  stats.train_accuracy = static_cast<double>(epoch_correct) /
                         static_cast<double>(count * realizations);
  const auto& phases = model_.phases();
  for (const auto& phi : phases) {
    if (options_.reg.roughness_p > 0.0) {
      stats.reg_loss += options_.reg.roughness_p / static_cast<double>(phi.size()) *
                        roughness::mask_roughness(phi, options_.reg.roughness);
    }
    if (options_.reg.intra_q > 0.0) {
      const std::size_t b = options_.reg.intra.block_size;
      const std::size_t blocks = ((phi.rows() + b - 1) / b) *
                                 ((phi.cols() + b - 1) / b);
      stats.reg_loss += options_.reg.intra_q / static_cast<double>(blocks) *
                        roughness::intra_block_variance_sum(phi,
                                                            options_.reg.intra);
    }
  }
  if (options_.slr != nullptr) {
    stats.penalty_loss = options_.slr->penalty_value(phases);
  } else if (options_.admm != nullptr) {
    stats.penalty_loss = options_.admm->penalty_value(phases);
  }
  if (options_.verbose) {
    log::info() << "epoch " << epoch_ << " loss " << stats.data_loss
                << " acc " << stats.train_accuracy << " reg " << stats.reg_loss
                << " penalty " << stats.penalty_loss;
  }
  if (!std::isfinite(stats.data_loss)) {
    throw NumericsError("training loss diverged (non-finite)");
  }
  return stats;
}

std::vector<EpochStats> Trainer::run() {
  const auto schedule =
      make_schedule(options_.schedule, options_.lr, options_.epochs);
  std::vector<EpochStats> history;
  history.reserve(options_.epochs);
  for (std::size_t e = 0; e < options_.epochs; ++e) {
    optimizer_->set_lr(schedule->at(e));
    history.push_back(run_epoch());
  }
  return history;
}

double evaluate_accuracy(const donn::DonnModel& model,
                         const data::Dataset& test,
                         const optics::EncodeOptions& encode) {
  check_dataset(model, test, "evaluate");
  std::vector<std::uint8_t> hits(test.size(), 0);
  parallel_for(0, test.size(), [&](std::size_t i) {
    const optics::Field input =
        optics::encode_image(test.image(i), model.config().grid, encode);
    hits[i] = model.predict(input) == test.label(i) ? 1 : 0;
  });
  std::size_t correct = 0;
  for (auto h : hits) correct += h;
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double evaluate_deployed_accuracy(const donn::DonnModel& model,
                                  const data::Dataset& test,
                                  const donn::CrosstalkOptions& crosstalk,
                                  const optics::EncodeOptions& encode) {
  // Copy the model and corrupt its phases with the crosstalk emulation.
  donn::DonnModel deployed = model;
  std::vector<MatrixD> corrupted;
  corrupted.reserve(model.phases().size());
  for (const auto& phi : model.phases()) {
    corrupted.push_back(donn::apply_crosstalk(phi, crosstalk));
  }
  deployed.clear_masks();  // corrupted masks are dense surfaces
  deployed.set_phases(std::move(corrupted));
  return evaluate_accuracy(deployed, test, encode);
}

}  // namespace odonn::train

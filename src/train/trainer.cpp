#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "optics/encode.hpp"
#include "train/schedule.hpp"

namespace odonn::train {

namespace {

void check_dataset(const donn::DonnModel& model, const data::Dataset& ds,
                   const char* what) {
  ODONN_CHECK(!ds.empty(), std::string(what) + ": empty dataset");
  ODONN_CHECK_SHAPE(ds.image(0).rows() == model.config().grid.n &&
                        ds.image(0).cols() == model.config().grid.n,
                    std::string(what) +
                        ": images must be pre-resized to the model grid");
  ODONN_CHECK(ds.num_classes() == model.config().num_classes,
              std::string(what) + ": class count mismatch");
}

/// Deterministic batch-parallel accumulation: the batch is cut into a fixed
/// number of slices; each slice owns a private gradient set; slices are
/// reduced in index order.
struct SliceAccumulator {
  std::vector<std::vector<MatrixD>> grads;
  std::vector<double> losses;
  std::vector<std::size_t> correct;

  SliceAccumulator(std::size_t slices, const donn::DonnModel& model)
      : grads(slices), losses(slices, 0.0), correct(slices, 0) {
    for (auto& g : grads) g = model.zero_gradients();
  }
};

}  // namespace

Trainer::Trainer(donn::DonnModel& model, const data::Dataset& train,
                 const TrainOptions& options)
    : model_(model), train_(train), options_(options), rng_(options.seed) {
  check_dataset(model, train, "trainer");
  ODONN_CHECK(options.batch_size >= 1, "trainer: batch_size must be >= 1");
  ODONN_CHECK(!(options.slr && options.admm),
              "trainer: attach at most one compression state");
  optimizer_ = make_optimizer(options.optimizer, options.lr);
}

void Trainer::compress_round(double surrogate_loss) {
  if (options_.slr != nullptr) {
    options_.slr->round(model_.phases(), surrogate_loss);
  } else if (options_.admm != nullptr) {
    options_.admm->round(model_.phases());
  }
}

EpochStats Trainer::run_epoch() {
  // Epoch-wise augmentation: train this pass on a freshly jittered copy.
  data::Dataset augmented;
  const data::Dataset& epoch_data =
      options_.augment
          ? (augmented = data::augment_dataset(train_, rng_,
                                               options_.augment_options),
             augmented)
          : train_;

  const std::size_t count = epoch_data.size();
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order);

  const std::size_t slices = std::max<std::size_t>(1, thread_count());
  const std::size_t batches = (count + options_.batch_size - 1) / options_.batch_size;
  const std::size_t rounds = std::max<std::size_t>(1, options_.compress_rounds_per_epoch);
  const std::size_t round_every = std::max<std::size_t>(1, batches / rounds);

  double epoch_loss = 0.0;
  std::size_t epoch_correct = 0;
  double last_surrogate = 0.0;

  for (std::size_t batch = 0; batch < batches; ++batch) {
    const std::size_t begin = batch * options_.batch_size;
    const std::size_t end = std::min(count, begin + options_.batch_size);
    const std::size_t batch_count = end - begin;

    SliceAccumulator acc(slices, model_);
    parallel_for(0, slices, [&](std::size_t s) {
      for (std::size_t i = begin + s; i < end; i += slices) {
        const std::size_t idx = order[i];
        const optics::Field input = optics::encode_image(
            epoch_data.image(idx), model_.config().grid, options_.encode);
        const auto result = model_.forward_backward(
            input, epoch_data.label(idx), acc.grads[s], options_.loss);
        acc.losses[s] += result.loss;
        if (result.predicted == epoch_data.label(idx)) ++acc.correct[s];
      }
    });

    // Reduce slices in index order (deterministic for a fixed thread count).
    auto grads = std::move(acc.grads[0]);
    double batch_loss = acc.losses[0];
    std::size_t batch_correct = acc.correct[0];
    for (std::size_t s = 1; s < slices; ++s) {
      for (std::size_t l = 0; l < grads.size(); ++l) grads[l] += acc.grads[s][l];
      batch_loss += acc.losses[s];
      batch_correct += acc.correct[s];
    }
    const double inv_batch = 1.0 / static_cast<double>(batch_count);
    for (auto& g : grads) g *= inv_batch;

    // Regularizers (functions of the weights, added once per batch).
    // Normalized per pixel / per block so the factors p, q are independent
    // of the grid size (see RegularizerOptions).
    double reg_value = 0.0;
    auto& phases = model_.phases();
    for (std::size_t l = 0; l < phases.size(); ++l) {
      if (options_.reg.roughness_p > 0.0) {
        const double scale = options_.reg.roughness_p /
                             static_cast<double>(phases[l].size());
        reg_value += scale *
                     roughness::roughness_with_grad(phases[l], grads[l],
                                                    scale,
                                                    options_.reg.roughness);
      }
      if (options_.reg.intra_q > 0.0) {
        const std::size_t b = options_.reg.intra.block_size;
        const std::size_t blocks = ((phases[l].rows() + b - 1) / b) *
                                   ((phases[l].cols() + b - 1) / b);
        const double scale =
            options_.reg.intra_q / static_cast<double>(blocks);
        reg_value += scale * roughness::intra_block_variance_with_grad(
                                 phases[l], grads[l], scale,
                                 options_.reg.intra);
      }
    }

    // Compression penalty.
    double penalty = 0.0;
    if (options_.slr != nullptr) {
      penalty = options_.slr->penalty_value(phases);
      options_.slr->add_penalty_gradient(phases, grads);
    } else if (options_.admm != nullptr) {
      penalty = options_.admm->penalty_value(phases);
      options_.admm->add_penalty_gradient(phases, grads);
    }

    model_.mask_gradients(grads);
    optimizer_->step(phases, grads);
    model_.apply_masks();

    epoch_loss += batch_loss;
    epoch_correct += batch_correct;
    last_surrogate = batch_loss * inv_batch + reg_value + penalty;
    if ((options_.slr != nullptr || options_.admm != nullptr) &&
        (batch + 1) % round_every == 0) {
      compress_round(last_surrogate);
    }
  }

  ++epoch_;

  EpochStats stats;
  stats.data_loss = epoch_loss / static_cast<double>(count);
  stats.train_accuracy =
      static_cast<double>(epoch_correct) / static_cast<double>(count);
  const auto& phases = model_.phases();
  for (const auto& phi : phases) {
    if (options_.reg.roughness_p > 0.0) {
      stats.reg_loss += options_.reg.roughness_p / static_cast<double>(phi.size()) *
                        roughness::mask_roughness(phi, options_.reg.roughness);
    }
    if (options_.reg.intra_q > 0.0) {
      const std::size_t b = options_.reg.intra.block_size;
      const std::size_t blocks = ((phi.rows() + b - 1) / b) *
                                 ((phi.cols() + b - 1) / b);
      stats.reg_loss += options_.reg.intra_q / static_cast<double>(blocks) *
                        roughness::intra_block_variance_sum(phi,
                                                            options_.reg.intra);
    }
  }
  if (options_.slr != nullptr) {
    stats.penalty_loss = options_.slr->penalty_value(phases);
  } else if (options_.admm != nullptr) {
    stats.penalty_loss = options_.admm->penalty_value(phases);
  }
  if (options_.verbose) {
    log::info() << "epoch " << epoch_ << " loss " << stats.data_loss
                << " acc " << stats.train_accuracy << " reg " << stats.reg_loss
                << " penalty " << stats.penalty_loss;
  }
  if (!std::isfinite(stats.data_loss)) {
    throw NumericsError("training loss diverged (non-finite)");
  }
  return stats;
}

std::vector<EpochStats> Trainer::run() {
  const auto schedule =
      make_schedule(options_.schedule, options_.lr, options_.epochs);
  std::vector<EpochStats> history;
  history.reserve(options_.epochs);
  for (std::size_t e = 0; e < options_.epochs; ++e) {
    optimizer_->set_lr(schedule->at(e));
    history.push_back(run_epoch());
  }
  return history;
}

double evaluate_accuracy(const donn::DonnModel& model,
                         const data::Dataset& test,
                         const optics::EncodeOptions& encode) {
  check_dataset(model, test, "evaluate");
  std::vector<std::uint8_t> hits(test.size(), 0);
  parallel_for(0, test.size(), [&](std::size_t i) {
    const optics::Field input =
        optics::encode_image(test.image(i), model.config().grid, encode);
    hits[i] = model.predict(input) == test.label(i) ? 1 : 0;
  });
  std::size_t correct = 0;
  for (auto h : hits) correct += h;
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double evaluate_deployed_accuracy(const donn::DonnModel& model,
                                  const data::Dataset& test,
                                  const donn::CrosstalkOptions& crosstalk,
                                  const optics::EncodeOptions& encode) {
  // Copy the model and corrupt its phases with the crosstalk emulation.
  donn::DonnModel deployed = model;
  std::vector<MatrixD> corrupted;
  corrupted.reserve(model.phases().size());
  for (const auto& phi : model.phases()) {
    corrupted.push_back(donn::apply_crosstalk(phi, crosstalk));
  }
  deployed.clear_masks();  // corrupted masks are dense surfaces
  deployed.set_phases(std::move(corrupted));
  return evaluate_accuracy(deployed, test, encode);
}

}  // namespace odonn::train

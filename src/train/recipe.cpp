#include "train/recipe.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace odonn::train {

const char* recipe_name(RecipeKind kind) {
  switch (kind) {
    case RecipeKind::Baseline: return "baseline";
    case RecipeKind::OursA: return "ours-a";
    case RecipeKind::OursB: return "ours-b";
    case RecipeKind::OursC: return "ours-c";
    case RecipeKind::OursD: return "ours-d";
  }
  return "?";
}

RecipeKind parse_recipe(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "baseline") return RecipeKind::Baseline;
  if (low == "ours-a" || low == "a") return RecipeKind::OursA;
  if (low == "ours-b" || low == "b") return RecipeKind::OursB;
  if (low == "ours-c" || low == "c") return RecipeKind::OursC;
  if (low == "ours-d" || low == "d") return RecipeKind::OursD;
  throw ConfigError("unknown recipe '" + name + "'");
}

// run_recipe / run_table are defined in src/pipeline/recipe_runner.cpp —
// thin compositions over pipeline stages; the dependency arrow points
// pipeline -> train, never the reverse. (The pre-pipeline monolithic
// implementation that used to live here as the parity oracle is gone; the
// parity guard is now pipeline-vs-pipeline — see tests/pipeline_test.cpp.)

}  // namespace odonn::train

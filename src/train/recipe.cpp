#include "train/recipe.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/error.hpp"
#include "roughness/report.hpp"

namespace odonn::train {

const char* recipe_name(RecipeKind kind) {
  switch (kind) {
    case RecipeKind::Baseline: return "baseline";
    case RecipeKind::OursA: return "ours-a";
    case RecipeKind::OursB: return "ours-b";
    case RecipeKind::OursC: return "ours-c";
    case RecipeKind::OursD: return "ours-d";
  }
  return "?";
}

RecipeKind parse_recipe(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "baseline") return RecipeKind::Baseline;
  if (low == "ours-a" || low == "a") return RecipeKind::OursA;
  if (low == "ours-b" || low == "b") return RecipeKind::OursB;
  if (low == "ours-c" || low == "c") return RecipeKind::OursC;
  if (low == "ours-d" || low == "d") return RecipeKind::OursD;
  throw ConfigError("unknown recipe '" + name + "'");
}

// run_recipe / run_table are defined in src/pipeline/recipe_runner.cpp —
// thin compositions over pipeline stages; the dependency arrow points
// pipeline -> train, never the reverse.

// ---------------------------------------------------------------------------
// Parity oracle: the pre-pipeline implementation, kept verbatim. Tests
// compare run_recipe() (stage-based) against this path bit-for-bit.
// ---------------------------------------------------------------------------

namespace reference {

namespace {

struct RecipeFlags {
  bool roughness = false;
  bool intra = false;
  bool sparsify = false;
};

RecipeFlags flags_for(RecipeKind kind) {
  switch (kind) {
    case RecipeKind::Baseline: return {false, false, false};
    case RecipeKind::OursA: return {true, false, false};
    case RecipeKind::OursB: return {false, false, true};
    case RecipeKind::OursC: return {true, false, true};
    case RecipeKind::OursD: return {true, true, true};
  }
  return {};
}

double overall_sparsity(const donn::DonnModel& model) {
  if (!model.has_masks()) return 0.0;
  double total = 0.0;
  for (const auto& m : model.masks()) total += sparsify::sparsity_ratio(m);
  return total / static_cast<double>(model.masks().size());
}

}  // namespace

RecipeResult run_recipe_monolithic(RecipeKind kind,
                                   const RecipeOptions& options,
                                   const data::Dataset& train,
                                   const data::Dataset& test) {
  const RecipeFlags flags = flags_for(kind);
  Rng rng(options.seed);
  donn::DonnModel model(options.model, rng);

  TrainOptions base;
  base.batch_size = options.batch_size;
  base.loss = options.loss;
  base.seed = options.seed + 1;
  base.verbose = options.verbose;
  base.reg.roughness = options.roughness;
  base.reg.intra = options.intra;
  if (flags.roughness) base.reg.roughness_p = options.roughness_p;
  if (flags.intra) base.reg.intra_q = options.intra_q;

  // Phase 1: dense training (with the recipe's regularizers).
  {
    TrainOptions dense = base;
    dense.epochs = options.epochs_dense;
    dense.lr = options.lr_dense;
    Trainer trainer(model, train, dense);
    trainer.run();
  }

  // Phase 2: SLR block-sparsity training + hard prune + mask-frozen
  // fine-tune (recipes B, C, D).
  if (flags.sparsify) {
    slr::SlrOptions slr_options = options.slr;
    slr_options.scheme = options.scheme;
    slr::SlrState slr_state(model.phases(), slr_options);
    {
      TrainOptions sparse = base;
      sparse.epochs = options.epochs_sparse;
      sparse.lr = options.lr_sparse;
      sparse.slr = &slr_state;
      Trainer trainer(model, train, sparse);
      trainer.run();
    }
    model.set_masks(slr_state.masks());
    if (options.epochs_finetune > 0) {
      TrainOptions finetune = base;
      finetune.epochs = options.epochs_finetune;
      finetune.lr = options.lr_sparse;
      Trainer trainer(model, train, finetune);
      trainer.run();
    }
  }

  RecipeResult result;
  result.name = recipe_name(kind);
  result.accuracy = evaluate_accuracy(model, test);
  result.sparsity = overall_sparsity(model);

  const auto before = roughness::report(model.phases(), options.roughness);
  result.roughness_before = before.overall;
  result.deployed_accuracy =
      evaluate_deployed_accuracy(model, test, options.crosstalk);

  // 2*pi periodic optimization (§III-D2) — post-processing, no retraining.
  smooth2pi::TwoPiOptions two_pi = options.two_pi;
  two_pi.roughness = options.roughness;
  two_pi.seed = options.seed + 99;
  const auto layer_results = smooth2pi::optimize_2pi_all(model.phases(), two_pi);
  std::vector<MatrixD> smoothed;
  smoothed.reserve(layer_results.size());
  double after_sum = 0.0;
  for (const auto& lr : layer_results) {
    smoothed.push_back(lr.optimized);
    after_sum += lr.roughness_after;
  }
  result.roughness_after = after_sum / static_cast<double>(layer_results.size());

  // The smoothed masks are inference-equivalent in the ideal simulation but
  // behave differently under the crosstalk deployment model.
  result.trained_phases = model.phases();
  result.smoothed_phases = smoothed;
  donn::DonnModel smoothed_model = model;
  smoothed_model.clear_masks();  // +2*pi pixels are no longer exact zeros
  smoothed_model.set_phases(std::move(smoothed));
  result.deployed_accuracy_after_2pi =
      evaluate_deployed_accuracy(smoothed_model, test, options.crosstalk);

  return result;
}

}  // namespace reference

}  // namespace odonn::train

// First-order optimizers over per-layer matrix parameters. The paper trains
// with Adam (lr 0.2 for the baseline, 0.001 during sparsification, §IV-A2);
// SGD(+momentum) and AdamW are provided for ablations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace odonn::train {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// In-place parameter update from gradients (shapes must match the first
  /// call; state is allocated lazily).
  virtual void step(std::vector<MatrixD>& params,
                    const std::vector<MatrixD>& grads) = 0;

  /// Clears accumulated state (moments, step counter).
  virtual void reset() = 0;

  double lr() const { return lr_; }
  void set_lr(double lr);

 protected:
  explicit Optimizer(double lr);
  double lr_;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(std::vector<MatrixD>& params,
            const std::vector<MatrixD>& grads) override;
  void reset() override;

 private:
  double momentum_;
  std::vector<MatrixD> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);
  void step(std::vector<MatrixD>& params,
            const std::vector<MatrixD>& grads) override;
  void reset() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<MatrixD> m_, v_;
};

/// AdamW = Adam with decoupled weight decay.
class AdamW final : public Adam {
 public:
  AdamW(double lr, double weight_decay);
};

/// Factory by name: "sgd" | "momentum" | "adam" | "adamw".
std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr);

}  // namespace odonn::train

#include "train/optim.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/error.hpp"

namespace odonn::train {

namespace {

void check_shapes(const std::vector<MatrixD>& params,
                  const std::vector<MatrixD>& grads) {
  ODONN_CHECK_SHAPE(params.size() == grads.size(),
                    "optimizer: parameter/gradient count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    ODONN_CHECK_SHAPE(params[i].same_shape(grads[i]),
                      "optimizer: parameter/gradient shape mismatch");
  }
}

void ensure_state(std::vector<MatrixD>& state,
                  const std::vector<MatrixD>& params) {
  if (state.size() == params.size()) return;
  state.clear();
  state.reserve(params.size());
  for (const auto& p : params) state.emplace_back(p.rows(), p.cols(), 0.0);
}

}  // namespace

Optimizer::Optimizer(double lr) : lr_(lr) {
  ODONN_CHECK(lr > 0.0, "optimizer: learning rate must be positive");
}

void Optimizer::set_lr(double lr) {
  ODONN_CHECK(lr > 0.0, "optimizer: learning rate must be positive");
  lr_ = lr;
}

Sgd::Sgd(double lr, double momentum) : Optimizer(lr), momentum_(momentum) {
  ODONN_CHECK(momentum >= 0.0 && momentum < 1.0,
              "sgd: momentum must be in [0, 1)");
}

void Sgd::step(std::vector<MatrixD>& params,
               const std::vector<MatrixD>& grads) {
  check_shapes(params, grads);
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      for (std::size_t j = 0; j < params[i].size(); ++j) {
        params[i][j] -= lr_ * grads[i][j];
      }
    }
    return;
  }
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = 0; j < params[i].size(); ++j) {
      velocity_[i][j] = momentum_ * velocity_[i][j] + grads[i][j];
      params[i][j] -= lr_ * velocity_[i][j];
    }
  }
}

void Sgd::reset() { velocity_.clear(); }

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : Optimizer(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  ODONN_CHECK(beta1 >= 0.0 && beta1 < 1.0, "adam: beta1 must be in [0, 1)");
  ODONN_CHECK(beta2 >= 0.0 && beta2 < 1.0, "adam: beta2 must be in [0, 1)");
  ODONN_CHECK(eps > 0.0, "adam: eps must be positive");
  ODONN_CHECK(weight_decay >= 0.0, "adam: weight decay must be >= 0");
}

void Adam::step(std::vector<MatrixD>& params,
                const std::vector<MatrixD>& grads) {
  check_shapes(params, grads);
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = 0; j < params[i].size(); ++j) {
      const double g = grads[i][j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0 - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0 - beta2_) * g * g;
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      double update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0) update += weight_decay_ * params[i][j];
      params[i][j] -= lr_ * update;
    }
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

AdamW::AdamW(double lr, double weight_decay)
    : Adam(lr, 0.9, 0.999, 1e-8, weight_decay) {}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "sgd") return std::make_unique<Sgd>(lr);
  if (low == "momentum") return std::make_unique<Sgd>(lr, 0.9);
  if (low == "adam") return std::make_unique<Adam>(lr);
  if (low == "adamw") return std::make_unique<AdamW>(lr, 1e-4);
  throw ConfigError("unknown optimizer '" + name + "'");
}

}  // namespace odonn::train

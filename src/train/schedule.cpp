#include "train/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/error.hpp"

namespace odonn::train {

ConstantLr::ConstantLr(double lr) : lr_(lr) {
  ODONN_CHECK(lr > 0.0, "schedule: lr must be positive");
}

double ConstantLr::at(std::size_t) const { return lr_; }

StepDecayLr::StepDecayLr(double lr, double gamma, std::size_t period)
    : lr_(lr), gamma_(gamma), period_(period) {
  ODONN_CHECK(lr > 0.0, "schedule: lr must be positive");
  ODONN_CHECK(gamma > 0.0 && gamma <= 1.0, "schedule: gamma must be in (0, 1]");
  ODONN_CHECK(period >= 1, "schedule: period must be >= 1");
}

double StepDecayLr::at(std::size_t epoch) const {
  return lr_ * std::pow(gamma_, static_cast<double>(epoch / period_));
}

CosineLr::CosineLr(double lr, double lr_min, std::size_t total_epochs)
    : lr_(lr), lr_min_(lr_min), total_(std::max<std::size_t>(total_epochs, 1)) {
  ODONN_CHECK(lr > 0.0 && lr_min > 0.0, "schedule: lr must be positive");
  ODONN_CHECK(lr_min <= lr, "schedule: lr_min must not exceed lr");
}

double CosineLr::at(std::size_t epoch) const {
  const double t = std::min(1.0, static_cast<double>(epoch) /
                                     static_cast<double>(total_));
  return lr_min_ + 0.5 * (lr_ - lr_min_) * (1.0 + std::cos(M_PI * t));
}

std::unique_ptr<LrSchedule> make_schedule(const std::string& name, double lr,
                                          std::size_t total_epochs) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "constant") return std::make_unique<ConstantLr>(lr);
  if (low == "step") return std::make_unique<StepDecayLr>(lr, 0.5, std::max<std::size_t>(1, total_epochs / 3));
  if (low == "cosine") return std::make_unique<CosineLr>(lr, lr * 0.01, total_epochs);
  throw ConfigError("unknown schedule '" + name + "'");
}

}  // namespace odonn::train

#include "train/metrics.hpp"

#include "common/error.hpp"

namespace odonn::train {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), counts_(num_classes * num_classes, 0) {
  ODONN_CHECK(num_classes >= 1, "confusion matrix: need >= 1 class");
}

void ConfusionMatrix::add(std::size_t predicted, std::size_t truth) {
  ODONN_CHECK(predicted < n_ && truth < n_,
              "confusion matrix: class out of range");
  ++counts_[predicted * n_ + truth];
  ++total_;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  ODONN_CHECK_SHAPE(other.n_ == n_, "confusion matrix: size mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::size_t ConfusionMatrix::count(std::size_t predicted,
                                   std::size_t truth) const {
  ODONN_CHECK(predicted < n_ && truth < n_,
              "confusion matrix: class out of range");
  return counts_[predicted * n_ + truth];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += counts_[c * n_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::per_class_recall() const {
  std::vector<double> recall(n_, 0.0);
  for (std::size_t truth = 0; truth < n_; ++truth) {
    std::size_t class_total = 0;
    for (std::size_t pred = 0; pred < n_; ++pred) {
      class_total += counts_[pred * n_ + truth];
    }
    if (class_total > 0) {
      recall[truth] = static_cast<double>(counts_[truth * n_ + truth]) /
                      static_cast<double>(class_total);
    }
  }
  return recall;
}

}  // namespace odonn::train

// Experiment recipes reproducing the paper's model variants (§IV-B):
//   Baseline — plain DONN training ([5],[6],[8] row of Tables II-V)
//   Ours-A   — roughness-aware training (Eq. 5)
//   Ours-B   — SLR block sparsification
//   Ours-C   — sparsity + roughness
//   Ours-D   — sparsity + roughness + intra-block smoothness (Eq. 8)
// Every recipe reports test accuracy, R_overall before the 2*pi
// optimization, R_overall after it (§III-D2), and — as an extension — the
// accuracy under the interpixel-crosstalk deployment emulation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "donn/model.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "train/trainer.hpp"

namespace odonn::train {

enum class RecipeKind { Baseline, OursA, OursB, OursC, OursD };

const char* recipe_name(RecipeKind kind);
RecipeKind parse_recipe(const std::string& name);

struct RecipeOptions {
  donn::DonnConfig model = donn::DonnConfig::scaled(64);
  std::size_t epochs_dense = 3;     ///< paper: 50-150 depending on dataset
  std::size_t epochs_sparse = 2;    ///< SLR training epochs
  std::size_t epochs_finetune = 1;  ///< mask-frozen recovery epochs
  double lr_dense = 0.2;            ///< paper §IV-A2
  double lr_sparse = 0.001;         ///< paper §IV-A2
  std::size_t batch_size = 200;
  /// Regularization factors. Both regularizers are normalized per pixel /
  /// per block by the trainer, which makes p grid-size invariant: the
  /// paper's published p = 0.1 (Fig. 6c inflection) transfers directly.
  /// q is not directly comparable to the paper's scale (their long, large-
  /// batch training yields near-flat masks whose per-block variances are
  /// orders of magnitude below ours); 0.03 reproduces the Ours-D shape and
  /// the Fig. 6d sweep locates the inflection empirically.
  double roughness_p = 0.1;
  double intra_q = 0.03;
  roughness::RoughnessOptions roughness = {};
  roughness::IntraBlockOptions intra = {};
  slr::SlrOptions slr = {};         ///< scheme filled from this config
  sparsify::SchemeOptions scheme{sparsify::Scheme::Block, 0.1, 5, 3};
  smooth2pi::TwoPiOptions two_pi = {};
  donn::CrosstalkOptions crosstalk = {};
  donn::LossOptions loss = {};
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct RecipeResult {
  std::string name;
  double accuracy = 0.0;           ///< simulated test accuracy
  double roughness_before = 0.0;   ///< R_overall before 2*pi optimization
  double roughness_after = 0.0;    ///< R_overall after 2*pi optimization
  double deployed_accuracy = 0.0;  ///< accuracy under crosstalk emulation
  double deployed_accuracy_after_2pi = 0.0;
  double sparsity = 0.0;           ///< achieved zero fraction (0 if dense)
  double seconds = 0.0;            ///< wall-clock of this recipe's pipeline
  std::vector<MatrixD> trained_phases;   ///< per-layer masks after training
  std::vector<MatrixD> smoothed_phases;  ///< after the 2*pi optimization
};

/// One entry of a run_recipes batch: a recipe plus its (possibly swept)
/// options. `label` names checkpoint subdirectories and result rows;
/// empty defaults to recipe_name(kind).
struct RecipeRequest {
  RecipeKind kind = RecipeKind::Baseline;
  RecipeOptions options;
  std::string label;
};

/// How a batch of recipes (a table, a sweep) executes. Results are bitwise
/// identical for every jobs= / inner_threads= combination: each recipe is
/// deterministic over its own ArtifactStore (pipeline::ParallelTableRunner
/// contract).
/// One streamed stage event from a running table (mirrors
/// pipeline::StageProgressEvent without depending on pipeline headers —
/// the dependency arrow stays train <- pipeline).
struct TableProgress {
  std::string label;       ///< recipe row label
  std::size_t stage = 0;   ///< stage index within the recipe's pipeline
  std::string stage_name;
  bool finished = false;   ///< false = stage start, true = stage end
  double seconds = 0.0;    ///< valid when finished
  bool skipped = false;    ///< checkpoint fast-forward (valid when finished)
};

/// Invoked serially (never concurrently) as stages of any recipe start and
/// finish — live streaming, not buffered until the table returns.
using TableProgressSink = std::function<void(const TableProgress&)>;

struct TableRunOptions {
  std::size_t jobs = 1;           ///< concurrent recipes (1 = sequential)
  std::size_t inner_threads = 0;  ///< per-recipe thread budget (0 = auto)
  /// When non-empty, each recipe checkpoints under `<dir>/<label>/` —
  /// independent subdirectories, so resume=true fast-forwards exactly the
  /// recipes that completed, even after a parallel run failed midway.
  std::string checkpoint_dir;
  bool resume = false;
  /// Streaming per-stage progress events (observability only: has no
  /// effect on results). May be empty.
  TableProgressSink progress;
};

/// Runs every requested recipe — concurrently when table.jobs > 1 — and
/// returns the results in request order.
std::vector<RecipeResult> run_recipes(const std::vector<RecipeRequest>& requests,
                                      const data::Dataset& train,
                                      const data::Dataset& test,
                                      const TableRunOptions& table = {});

/// Runs one recipe end to end on pre-resized train/test datasets.
/// Implemented as a thin composition over pipeline::Pipeline stages in
/// src/pipeline/recipe_runner.cpp (spec_for_recipe gives the per-recipe
/// stage list). Parity is guarded by pipeline-vs-pipeline comparisons in
/// tests/pipeline_test.cpp (the pre-pipeline monolithic oracle served its
/// purpose for three PRs and was removed).
RecipeResult run_recipe(RecipeKind kind, const RecipeOptions& options,
                        const data::Dataset& train, const data::Dataset& test);

/// Runs all five recipes (a full table) and returns the rows in paper
/// order. `table` controls parallelism/checkpointing; the default runs
/// sequentially, and any jobs= produces bitwise-identical rows.
std::vector<RecipeResult> run_table(const RecipeOptions& options,
                                    const data::Dataset& train,
                                    const data::Dataset& test,
                                    const TableRunOptions& table = {});

}  // namespace odonn::train

// Classification metrics: running accuracy and a confusion matrix.
#pragma once

#include <cstddef>
#include <vector>

namespace odonn::train {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t predicted, std::size_t truth);
  void merge(const ConfusionMatrix& other);

  std::size_t num_classes() const { return n_; }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t predicted, std::size_t truth) const;

  double accuracy() const;
  std::vector<double> per_class_recall() const;

 private:
  std::size_t n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  ///< counts_[pred * n + truth]
};

}  // namespace odonn::train

// Finite-difference gradient checking used throughout the test suite to
// validate every hand-derived backward pass.
#pragma once

#include <functional>

#include "tensor/matrix.hpp"

namespace odonn::donn {

/// Central-difference gradient of a scalar function of a matrix, evaluated
/// entry by entry: (f(x+h e_i) - f(x - h e_i)) / (2h). O(size) function
/// evaluations — keep instances small.
MatrixD numerical_gradient(const std::function<double(const MatrixD&)>& f,
                           const MatrixD& at, double h = 1e-5);

/// Relative error max|a-b| / (max|a|,|b|,1) between two gradients.
double gradient_rel_error(const MatrixD& analytic, const MatrixD& numeric);

}  // namespace odonn::donn

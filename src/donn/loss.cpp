#include "donn/loss.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/error.hpp"

namespace odonn::donn {

LossType parse_loss(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "softmax_mse" || low == "mse") return LossType::SoftmaxMse;
  if (low == "cross_entropy" || low == "ce") return LossType::CrossEntropy;
  throw ConfigError("unknown loss '" + name + "'");
}

std::vector<double> softmax(const std::vector<double>& logits) {
  ODONN_CHECK(!logits.empty(), "softmax of empty vector");
  const double peak = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - peak);
    total += out[i];
  }
  for (auto& v : out) v /= total;
  return out;
}

LossResult evaluate_loss(const std::vector<double>& sums, std::size_t label,
                         const LossOptions& options) {
  const std::size_t n = sums.size();
  ODONN_CHECK(n >= 2, "loss: need at least two classes");
  ODONN_CHECK(label < n, "loss: label out of range");

  LossResult result;
  result.predicted = static_cast<std::size_t>(
      std::max_element(sums.begin(), sums.end()) - sums.begin());

  // Normalize raw sums into logits z; remember the chain factors. The
  // TotalPower denominator is sum(|s|), not sum(s): standard readouts are
  // non-negative so |s| is an exact identity there, while differential
  // readouts are signed and can sum to ~0, which would divide by eps and
  // flip logit signs.
  std::vector<double> z(n);
  double total = 0.0;
  for (double s : sums) total += std::abs(s);
  const double scale = (options.norm == NormMode::TotalPower)
                           ? static_cast<double>(n) / (total + options.eps)
                           : 1.0;
  for (std::size_t i = 0; i < n; ++i) z[i] = sums[i] * scale;

  const std::vector<double> p = softmax(z);

  // dL/dz.
  std::vector<double> gz(n, 0.0);
  if (options.type == LossType::SoftmaxMse) {
    // l = sum_c (p_c - t_c)^2; dl/dz_k = p_k (e_k - sum_c e_c p_c),
    // e_c = 2 (p_c - t_c).
    double loss = 0.0;
    double dot = 0.0;
    std::vector<double> e(n);
    for (std::size_t c = 0; c < n; ++c) {
      const double t = (c == label) ? 1.0 : 0.0;
      const double d = p[c] - t;
      loss += d * d;
      e[c] = 2.0 * d;
      dot += e[c] * p[c];
    }
    for (std::size_t k = 0; k < n; ++k) gz[k] = p[k] * (e[k] - dot);
    result.loss = loss;
  } else {
    // l = -log p_label; dl/dz = p - onehot.
    const double pl = std::max(p[label], 1e-300);
    result.loss = -std::log(pl);
    for (std::size_t k = 0; k < n; ++k) {
      gz[k] = p[k] - ((k == label) ? 1.0 : 0.0);
    }
  }

  // Chain through the normalization z_i = scale(s) * s_i.
  result.grad_sums.assign(n, 0.0);
  if (options.norm == NormMode::TotalPower) {
    // With total = sum(|s|):
    //   dz_i/ds_j = scale * delta_ij - n * s_i * sgn(s_j) / (total+eps)^2
    //             = scale * delta_ij - sgn(s_j) * z_i / (total+eps).
    // sgn(0) := +1, matching d|x|/dx one-sided at 0; for non-negative sums
    // every sgn is +1 and the arithmetic is unchanged bit for bit.
    double gz_dot_z = 0.0;
    for (std::size_t i = 0; i < n; ++i) gz_dot_z += gz[i] * z[i];
    const double inv_total = 1.0 / (total + options.eps);
    for (std::size_t j = 0; j < n; ++j) {
      const double sgn = (sums[j] < 0.0) ? -1.0 : 1.0;
      result.grad_sums[j] = scale * gz[j] - sgn * (inv_total * gz_dot_z);
    }
  } else {
    result.grad_sums = gz;
  }
  return result;
}

}  // namespace odonn::donn

// First-order interlayer reflection (evaluation-time physics extension).
//
// The paper's interpixel-interaction citation [13] (Lou et al., Optics
// Letters 2023) studies two deployment effects: interpixel interaction
// (modelled here by donn/crosstalk.hpp) and INTERLAYER REFLECTION — each
// mask surface reflects a fraction of the incident power back toward the
// previous surface, where it reflects again and re-arrives delayed by one
// round trip. To first order in the power reflectance R = r^2, the field
// arriving at layer i becomes
//     f_arr = f_inc + r^2 * P(P(f_inc))        (P = one inter-layer hop)
// and the transmitted amplitude is scaled by t = sqrt(1 - r^2).
// This is an evaluation model: training stays reflection-free (as in the
// paper), and benches measure how much accuracy survives deployment on
// partially reflective hardware.
#pragma once

#include "donn/model.hpp"

namespace odonn::donn {

struct ReflectionOptions {
  /// Amplitude reflection coefficient r at every mask surface, in [0, 1).
  /// Typical uncoated interfaces: r ~ 0.2 (4% power).
  double amplitude = 0.2;
};

/// Field at the detector plane including the first-order round-trip bounce
/// at every diffractive layer. With amplitude == 0 this is exactly
/// model.propagate_through(input).
optics::Field reflective_propagate_through(const DonnModel& model,
                                           const optics::Field& input,
                                           const ReflectionOptions& options);

/// argmax class under the reflective forward model.
std::size_t reflective_predict(const DonnModel& model,
                               const optics::Field& input,
                               const ReflectionOptions& options);

}  // namespace odonn::donn

// DonnModel — the full diffractive optical neural network (paper §III-A,
// Eq. 2): source -> [free space -> phase mask] x N -> free space -> detector.
//
// Parameters are the per-layer phase masks; optional sparsity masks freeze
// pixels at zero (§III-C). Forward/backward are hand-derived (DESIGN.md §4)
// and validated against finite differences in tests.
//
// Batched inference and thread safety
// -----------------------------------
// Beyond the one-sample path (predict / detector_sums / output_intensity),
// the model exposes batched entry points — predict_batch,
// detector_sums_batch, output_intensity_batch and the plan-reusing core
// infer_batch — that evaluate K samples against the single cached
// propagation kernel / FFT plan set, share precomputed per-layer modulation
// tables exp(i*phi) across the whole batch (modulation_tables()), and
// parallelize over samples via common/parallel with per-chunk scratch
// buffers. The batched path performs bitwise-identical arithmetic to the
// single-sample path, so predictions and detector sums match exactly
// (tests/serve_test.cpp asserts this).
//
// Thread-safety contract: every const member function is safe to call
// concurrently from any number of threads — inference reads the phase
// masks, the shared Propagator and the detector layout but mutates no model
// state. The non-const mutators (set_phases, set_masks, apply_masks,
// phases()) must not race with in-flight inference; the serving layer
// (src/serve) enforces this by only ever publishing models as
// shared_ptr<const DonnModel>.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "donn/detector.hpp"
#include "donn/diffmod.hpp"
#include "donn/loss.hpp"
#include "optics/encode.hpp"
#include "optics/propagate.hpp"
#include "sparsify/mask.hpp"

namespace odonn::donn {

enum class PhaseInit {
  /// Flat surface (pi + small noise): trained roughness reflects learned
  /// structure; matches the paper's baseline behavior under 2*pi
  /// optimization (<2% reduction). Default.
  Flat,
  /// Classic uniform [0, 2*pi) initialization (kept for ablation).
  Uniform,
};

struct DonnConfig {
  optics::GridSpec grid{optics::PaperSystem::kGridSize,
                        optics::PaperSystem::kPixelPitch};
  double wavelength = optics::PaperSystem::kWavelength;
  double distance = optics::PaperSystem::kLayerDistance;
  optics::KernelType kernel = optics::KernelType::AngularSpectrum;
  bool pad2x = false;
  std::size_t num_layers = optics::PaperSystem::kNumLayers;
  std::size_t num_classes = 10;
  std::size_t detector_size = optics::PaperSystem::kDetectorSize;
  DetectorMode detector = DetectorMode::Standard;
  PhaseInit init = PhaseInit::Flat;

  /// Exact paper geometry (§IV-A1).
  static DonnConfig paper();

  /// CPU-sized geometry with grid_n samples per side. Pixel pitch is chosen
  /// so the diffractive mixing ratio lambda*z/(n*pitch^2) matches the
  /// paper's 0.574, and the detector regions keep the paper's 10% linear
  /// fill — so the reduced system behaves like a shrunk paper system rather
  /// than a different optical regime.
  static DonnConfig scaled(std::size_t grid_n);
};

class DonnModel {
 public:
  /// Initializes all phase masks uniformly in [0, 2*pi).
  DonnModel(const DonnConfig& config, Rng& rng);

  const DonnConfig& config() const { return config_; }
  std::size_t num_layers() const { return phases_.size(); }
  const ReadoutStrategy& detector() const { return detector_; }
  const optics::Propagator& propagator() const { return *propagator_; }

  std::vector<MatrixD>& phases() { return phases_; }
  const std::vector<MatrixD>& phases() const { return phases_; }
  void set_phases(std::vector<MatrixD> phases);

  /// Installs per-layer sparsity masks (empty vector clears). Masks are
  /// applied to the phases immediately and gradients through masked pixels
  /// are zeroed by mask_gradients().
  void set_masks(std::vector<sparsify::SparsityMask> masks);
  void clear_masks();
  bool has_masks() const { return !masks_.empty(); }
  const std::vector<sparsify::SparsityMask>& masks() const { return masks_; }

  /// Re-zeroes masked phase pixels (call after optimizer steps).
  void apply_masks();

  /// Zeroes gradient entries of masked-off pixels.
  void mask_gradients(std::vector<MatrixD>& grads) const;

  /// Field at the detector plane.
  optics::Field propagate_through(const optics::Field& input) const;

  /// Detector-plane intensity |f|^2.
  MatrixD output_intensity(const optics::Field& input) const;

  /// Raw per-class scores (region intensity sums in Standard mode, signed
  /// +/- pair differences in Differential mode).
  std::vector<double> detector_sums(const optics::Field& input) const;

  /// argmax class.
  std::size_t predict(const optics::Field& input) const;

  /// Precomputed per-layer modulation tables w = exp(i*phi), shared across
  /// a batch so the transcendental cost of the masks is paid once per batch
  /// instead of once per sample. Recompute after set_phases/set_masks (the
  /// serving layer caches them per published model snapshot).
  std::vector<MatrixC> modulation_tables() const;

  /// Plan-reusing batched inference core: evaluates inputs[k] for all k
  /// through the mask stack using the cached propagator and the supplied
  /// modulation tables, parallelized over samples via common/parallel.
  /// Each non-null output vector is resized to inputs.size() and filled at
  /// index k with that sample's result. Bitwise-identical arithmetic to the
  /// single-sample path; results are deterministic and independent of the
  /// thread count. Thread-safe (const; writes only to caller outputs).
  void infer_batch(const std::vector<optics::Field>& inputs,
                   const std::vector<MatrixC>& modulations,
                   std::vector<std::size_t>* predictions,
                   std::vector<std::vector<double>>* sums,
                   std::vector<MatrixD>* intensities) const;

  /// Batched argmax classes (exact parity with per-sample predict()).
  std::vector<std::size_t> predict_batch(
      const std::vector<optics::Field>& inputs) const;

  /// Batched raw per-class scores.
  std::vector<std::vector<double>> detector_sums_batch(
      const std::vector<optics::Field>& inputs) const;

  /// Batched detector-plane intensities.
  std::vector<MatrixD> output_intensity_batch(
      const std::vector<optics::Field>& inputs) const;

  struct ForwardBackwardResult {
    double loss = 0.0;
    std::size_t predicted = 0;
  };

  /// One-sample forward + backward. Phase gradients are ACCUMULATED into
  /// `phase_grads` (must be preallocated to the right shapes); the data
  /// term only — regularizers are added by the trainer. Thread-safe for
  /// concurrent calls (model state is read-only here).
  ForwardBackwardResult forward_backward(const optics::Field& input,
                                         std::size_t label,
                                         std::vector<MatrixD>& phase_grads,
                                         const LossOptions& loss_options) const;

  /// Allocates a zeroed gradient set matching the phase shapes.
  std::vector<MatrixD> zero_gradients() const;

 private:
  DonnConfig config_;
  std::shared_ptr<const optics::Propagator> propagator_;
  std::vector<MatrixD> phases_;
  std::vector<sparsify::SparsityMask> masks_;
  ReadoutStrategy detector_;
};

}  // namespace odonn::donn

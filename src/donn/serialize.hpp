// Model checkpointing: a small self-describing binary container for the
// DONN configuration, phase masks and optional sparsity masks, so trained
// models survive process boundaries (examples train once, benches reuse).
//
// Format (little-endian, doubles as IEEE-754):
//   magic "ODNN" | u32 version | config fields | u32 layer count |
//   per layer: n*n f64 phases | u8 has_masks | per layer: n*n u8 mask
// Version 2 appends a u32 detector mode (0 standard, 1 differential) to the
// config fields; version-1 checkpoints still load as Standard.
#pragma once

#include <string>

#include "donn/model.hpp"

namespace odonn::donn {

/// Writes the model (config + phases + masks) to `path`. Throws IoError.
void save_model(const DonnModel& model, const std::string& path);

/// Reads a model back. Validates magic/version/shape; throws IoError on any
/// malformed content.
DonnModel load_model(const std::string& path);

}  // namespace odonn::donn

#include "donn/crosstalk.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace odonn::donn {

MatrixD apply_crosstalk(const MatrixD& phase, const CrosstalkOptions& options) {
  ODONN_CHECK(!phase.empty(), "apply_crosstalk: empty mask");
  ODONN_CHECK(options.strength >= 0.0 && options.strength <= 1.0,
              "apply_crosstalk: strength must be in [0, 1]");
  ODONN_CHECK(options.half_response > 0.0,
              "apply_crosstalk: half_response must be positive");

  const MatrixD local = roughness::roughness_map(phase, options.roughness);
  const long rows = static_cast<long>(phase.rows());
  const long cols = static_cast<long>(phase.cols());
  MatrixD out(phase.rows(), phase.cols());
  for (long r = 0; r < rows; ++r) {
    for (long c = 0; c < cols; ++c) {
      // 3x3 neighborhood mean with zero padding (consistent with the
      // roughness boundary convention).
      double acc = 0.0;
      for (long dr = -1; dr <= 1; ++dr) {
        for (long dc = -1; dc <= 1; ++dc) {
          const long nr = r + dr;
          const long nc = c + dc;
          if (nr < 0 || nc < 0 || nr >= rows || nc >= cols) continue;
          acc += phase(static_cast<std::size_t>(nr),
                       static_cast<std::size_t>(nc));
        }
      }
      const double mean9 = acc / 9.0;
      const double rough = local(static_cast<std::size_t>(r),
                                 static_cast<std::size_t>(c));
      // Saturating response: alpha = strength * rough / (rough + half).
      const double alpha =
          options.strength * rough / (rough + options.half_response);
      const double ideal = phase(static_cast<std::size_t>(r),
                                 static_cast<std::size_t>(c));
      out(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          (1.0 - alpha) * ideal + alpha * mean9;
    }
  }
  return out;
}

}  // namespace odonn::donn

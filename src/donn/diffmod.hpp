// DiffMod — one diffractive-layer computation (paper §III-A):
//   DiffMod(f, W) = L(f, z) * exp(i W)
// i.e. free-space propagation over distance z followed by elementwise phase
// modulation. Forward caches the propagated field so the hand-derived
// backward can compute both the input gradient and the phase gradient:
//   g(w)      = conj(f_prop) .* g(out),   w = exp(i phi)
//   dL/dphi   = Re(i * w * conj(g(w)))
//   g(f_prop) = conj(w) .* g(out)
//   g(f_in)   = P^*(g(f_prop))
// with the complex gradient convention g(x) = dL/dRe(x) + i dL/dIm(x)
// (DESIGN.md §4).
#pragma once

#include <memory>

#include "optics/propagate.hpp"
#include "tensor/matrix.hpp"

namespace odonn::donn {

/// Per-sample forward cache for one DiffMod application.
struct DiffModCache {
  optics::Field propagated;  ///< field after free space, before modulation
};

class DiffMod {
 public:
  /// The propagator is shared (all layers in the paper use the same z), the
  /// phase mask is referenced — it lives in the model's parameter store.
  DiffMod(std::shared_ptr<const optics::Propagator> propagator,
          const MatrixD* phase);

  /// out = P(in) .* exp(i phi); fills `cache` for the backward pass.
  optics::Field forward(const optics::Field& input, DiffModCache& cache) const;

  /// Inference-only forward (no cache retention).
  optics::Field forward(const optics::Field& input) const;

  /// Consumes grad wrt the layer output; accumulates dL/dphi into
  /// `phase_grad` and returns grad wrt the layer input.
  optics::Field backward(const optics::Field& grad_output,
                         const DiffModCache& cache,
                         MatrixD& phase_grad) const;

  const MatrixD& phase() const { return *phase_; }

 private:
  std::shared_ptr<const optics::Propagator> propagator_;
  const MatrixD* phase_;
};

}  // namespace odonn::donn

// Trainable phase masks (the diffractive layers' weights). A phase mask is a
// real-valued matrix phi; the optical modulation applied to the field is
// exp(i * phi). Values are unconstrained during training — the physics is
// 2*pi-periodic, which §III-D2 exploits for post-training smoothing.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace odonn::donn {

/// Uniform random phases in [0, 2*pi) — the classic DONN initialization.
MatrixD random_phase_mask(std::size_t n, Rng& rng);

/// Flat initialization: constant `center` plus N(0, sigma) jitter. Starts
/// with a nearly smooth surface, so the trained mask's roughness reflects
/// learned structure rather than residual initialization noise — this is
/// what reproduces the paper's "2*pi alone helps a roughness-oblivious
/// model by <2%" observation (Tables II-V first row). The default center of
/// 5.0 rad matches the paper's trained masks (Fig. 5 shows phase mass at
/// high values; §III-D2's mechanism needs sparsified zeros to sit far below
/// their "high positive" neighbors so that +2*pi closes the gap).
MatrixD flat_phase_mask(std::size_t n, Rng& rng, double center = 5.0,
                        double sigma = 0.1);

/// Wraps every value into [0, 2*pi). Inference-equivalent to the input mask.
MatrixD wrap_phase(const MatrixD& phase);

/// Elementwise complex modulation coefficients exp(i * phi).
MatrixC modulation(const MatrixD& phase);

}  // namespace odonn::donn

// Interpixel-crosstalk deployment model.
//
// The paper motivates roughness optimization with the accuracy gap between
// numerical modelling and physical deployment caused by interpixel
// interaction (§II-B cites >= 30% degradation). The physical masks are not
// available here, so this module emulates deployment: each pixel's phase is
// smeared toward its neighborhood average, with smearing strength growing
// with the local phase roughness (sharp neighbor transitions produce a
// fast-varying incident field that the fabricated surface cannot realize).
// A model evaluated through apply_crosstalk() exhibits exactly the paper's
// narrative: rough masks lose much more accuracy at "deployment" than
// smooth ones — see bench/table1_methods and the integration tests.
#pragma once

#include "roughness/roughness.hpp"
#include "tensor/matrix.hpp"

namespace odonn::donn {

struct CrosstalkOptions {
  /// Maximum blend factor toward the neighborhood mean (0 = ideal device,
  /// 1 = full smearing at the roughest pixels).
  double strength = 0.5;
  /// Local roughness that already produces half-maximal smearing [rad].
  double half_response = 1.0;
  roughness::RoughnessOptions roughness = {};
};

/// Returns the "as-fabricated" phase mask: per-pixel blend between the ideal
/// phase and the 3x3 neighborhood mean, weighted by local roughness.
/// Smooth masks are nearly unchanged; rough masks are distorted.
MatrixD apply_crosstalk(const MatrixD& phase, const CrosstalkOptions& options = {});

}  // namespace odonn::donn

#include "donn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace odonn::donn {

namespace {

constexpr char kMagic[4] = {'O', 'D', 'N', 'N'};
// v1: config without detector mode (implicitly Standard).
// v2: appends a u32 detector mode after detector_size.
constexpr std::uint32_t kVersion = 2;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in, const std::string& path) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("truncated model file " + path);
  return v;
}

double read_f64(std::istream& in, const std::string& path) {
  double v = 0.0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("truncated model file " + path);
  return v;
}

}  // namespace

void save_model(const DonnModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create model file " + path);
  const DonnConfig& cfg = model.config();

  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(cfg.grid.n));
  write_f64(out, cfg.grid.pitch);
  write_f64(out, cfg.wavelength);
  write_f64(out, cfg.distance);
  write_u32(out, static_cast<std::uint32_t>(cfg.kernel));
  write_u32(out, cfg.pad2x ? 1 : 0);
  write_u32(out, static_cast<std::uint32_t>(cfg.num_layers));
  write_u32(out, static_cast<std::uint32_t>(cfg.num_classes));
  write_u32(out, static_cast<std::uint32_t>(cfg.detector_size));
  write_u32(out, static_cast<std::uint32_t>(cfg.detector));

  write_u32(out, static_cast<std::uint32_t>(model.phases().size()));
  for (const auto& phi : model.phases()) {
    out.write(reinterpret_cast<const char*>(phi.data()),
              static_cast<std::streamsize>(phi.size() * sizeof(double)));
  }
  const std::uint8_t has_masks = model.has_masks() ? 1 : 0;
  out.write(reinterpret_cast<const char*>(&has_masks), 1);
  if (has_masks != 0) {
    for (const auto& mask : model.masks()) {
      out.write(reinterpret_cast<const char*>(mask.data()),
                static_cast<std::streamsize>(mask.size()));
    }
  }
  if (!out) throw IoError("failed writing model file " + path);
}

DonnModel load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open model file " + path);

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw IoError("not an odonn model file: " + path);
  }
  const std::uint32_t version = read_u32(in, path);
  if (version < 1 || version > kVersion) {
    throw IoError("unsupported model version in " + path);
  }

  DonnConfig cfg;
  cfg.grid.n = read_u32(in, path);
  cfg.grid.pitch = read_f64(in, path);
  cfg.wavelength = read_f64(in, path);
  cfg.distance = read_f64(in, path);
  const std::uint32_t kernel = read_u32(in, path);
  if (kernel > 2) throw IoError("invalid kernel id in " + path);
  cfg.kernel = static_cast<optics::KernelType>(kernel);
  cfg.pad2x = read_u32(in, path) != 0;
  cfg.num_layers = read_u32(in, path);
  cfg.num_classes = read_u32(in, path);
  cfg.detector_size = read_u32(in, path);
  if (version >= 2) {
    const std::uint32_t mode = read_u32(in, path);
    if (mode > 1) throw IoError("invalid detector mode in " + path);
    cfg.detector = static_cast<DetectorMode>(mode);
  }  // v1 checkpoints predate detector modes: Standard.
  if (cfg.num_layers == 0 || cfg.num_layers > 64) {
    throw IoError("implausible layer count in " + path);
  }

  const std::uint32_t stored_layers = read_u32(in, path);
  if (stored_layers != cfg.num_layers) {
    throw IoError("layer count mismatch in " + path);
  }

  Rng rng(0);  // immediately overwritten by set_phases
  DonnModel model(cfg, rng);
  std::vector<MatrixD> phases;
  phases.reserve(stored_layers);
  for (std::uint32_t l = 0; l < stored_layers; ++l) {
    MatrixD phi(cfg.grid.n, cfg.grid.n);
    in.read(reinterpret_cast<char*>(phi.data()),
            static_cast<std::streamsize>(phi.size() * sizeof(double)));
    if (!in) throw IoError("truncated phase data in " + path);
    phases.push_back(std::move(phi));
  }

  std::uint8_t has_masks = 0;
  in.read(reinterpret_cast<char*>(&has_masks), 1);
  if (!in) throw IoError("truncated mask flag in " + path);
  std::vector<sparsify::SparsityMask> masks;
  if (has_masks != 0) {
    masks.reserve(stored_layers);
    for (std::uint32_t l = 0; l < stored_layers; ++l) {
      sparsify::SparsityMask mask(cfg.grid.n, cfg.grid.n, 1);
      in.read(reinterpret_cast<char*>(mask.data()),
              static_cast<std::streamsize>(mask.size()));
      if (!in) throw IoError("truncated mask data in " + path);
      masks.push_back(std::move(mask));
    }
  }
  model.set_phases(std::move(phases));
  model.set_masks(std::move(masks));
  return model;
}

}  // namespace odonn::donn

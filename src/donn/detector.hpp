// Detector plane with per-class readout regions (§III-A, §IV-A1): the class
// whose region accumulates the highest total intensity is the prediction.
// The paper places ten 20x20 regions evenly on a 200x200 plane; the layout
// here generalizes to any class count / grid and scales region placement
// proportionally.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace odonn::donn {

struct DetectorRegion {
  std::size_t r0 = 0, c0 = 0;  ///< top-left corner
  std::size_t size = 0;        ///< square side length
};

class DetectorLayout {
 public:
  /// Arranges `num_classes` square regions of side `region_size` on an
  /// n x n plane in an r x c grid (r*c >= num_classes, r chosen near
  /// sqrt(num_classes)), with centers evenly spaced. Throws ConfigError if
  /// the regions cannot fit without overlapping.
  static DetectorLayout evenly_spaced(std::size_t grid_n,
                                      std::size_t num_classes,
                                      std::size_t region_size);

  /// Custom layout; validates that regions are inside the plane and
  /// pairwise disjoint.
  DetectorLayout(std::size_t grid_n, std::vector<DetectorRegion> regions);

  std::size_t grid_n() const { return grid_n_; }
  std::size_t num_classes() const { return regions_.size(); }
  const std::vector<DetectorRegion>& regions() const { return regions_; }

  /// Per-class intensity sums (the DONN's raw output vector).
  std::vector<double> readout(const MatrixD& intensity) const;

  /// Adjoint of readout: scatters per-class gradients uniformly over their
  /// regions; entries outside any region are zero.
  MatrixD scatter(const std::vector<double>& grad_sums) const;

  /// argmax of readout (ties broken toward the lower class index).
  std::size_t predict(const MatrixD& intensity) const;

 private:
  std::size_t grid_n_;
  std::vector<DetectorRegion> regions_;
};

}  // namespace odonn::donn

// Detector plane with per-class readout regions (§III-A, §IV-A1): the class
// whose region accumulates the highest total intensity is the prediction.
// The paper places ten 20x20 regions evenly on a 200x200 plane; the layout
// here generalizes to any class count / grid and scales region placement
// proportionally.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace odonn::donn {

struct DetectorRegion {
  std::size_t r0 = 0, c0 = 0;  ///< top-left corner
  std::size_t size = 0;        ///< square side length
};

class DetectorLayout {
 public:
  /// Arranges `num_classes` square regions of side `region_size` on an
  /// n x n plane in an r x c grid (r*c >= num_classes, r chosen near
  /// sqrt(num_classes)), with centers evenly spaced. Throws ConfigError if
  /// the regions cannot fit without overlapping.
  static DetectorLayout evenly_spaced(std::size_t grid_n,
                                      std::size_t num_classes,
                                      std::size_t region_size);

  /// Custom layout; validates that regions are inside the plane and
  /// pairwise disjoint.
  DetectorLayout(std::size_t grid_n, std::vector<DetectorRegion> regions);

  std::size_t grid_n() const { return grid_n_; }
  std::size_t num_classes() const { return regions_.size(); }
  const std::vector<DetectorRegion>& regions() const { return regions_; }

  /// Per-class intensity sums (the DONN's raw output vector).
  std::vector<double> readout(const MatrixD& intensity) const;

  /// Adjoint of readout: scatters per-class gradients uniformly over their
  /// regions; entries outside any region are zero.
  MatrixD scatter(const std::vector<double>& grad_sums) const;

  /// argmax of readout (ties broken toward the lower class index).
  std::size_t predict(const MatrixD& intensity) const;

 private:
  std::size_t grid_n_;
  std::vector<DetectorRegion> regions_;
};

/// How detector regions map to class scores.
enum class DetectorMode {
  /// One region per class; the score is the region's intensity sum.
  Standard,
  /// Two regions per class (Li et al., arXiv:1906.03417): class k is scored
  /// by the *difference* of a +/- region pair, sums[2k] - sums[2k+1], so
  /// scores are signed and training can push energy away from the minus pad.
  Differential,
};

const char* detector_mode_name(DetectorMode mode);

/// Parses "standard" / "differential"; throws ConfigError otherwise.
DetectorMode parse_detector_mode(const std::string& name);

/// Readout strategy: composes a DetectorLayout with a DetectorMode and maps
/// region intensity sums to per-class scores (and score gradients back to
/// region gradients, the exact adjoint). Standard mode is the identity over
/// the layout and is arithmetically unchanged from reading the layout
/// directly, keeping pre-strategy digests bitwise identical.
class ReadoutStrategy {
 public:
  ReadoutStrategy(DetectorMode mode, DetectorLayout layout);

  /// Builds the evenly spaced layout for `num_classes` classes: one region
  /// per class in Standard mode, a +/- pair (2*num_classes regions, pairs
  /// adjacent in layout order) in Differential mode.
  static ReadoutStrategy evenly_spaced(DetectorMode mode, std::size_t grid_n,
                                       std::size_t num_classes,
                                       std::size_t region_size);

  DetectorMode mode() const { return mode_; }
  const DetectorLayout& layout() const { return layout_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_regions() const { return layout_.regions().size(); }

  /// Maps per-region intensity sums to per-class scores (identity move in
  /// Standard mode, pair differences in Differential mode).
  std::vector<double> scores_from_region_sums(
      std::vector<double> region_sums) const;

  /// Adjoint of scores_from_region_sums: +g[k] on the plus region, -g[k] on
  /// the minus region (Standard: identity copy).
  std::vector<double> region_grads_from_score_grads(
      const std::vector<double>& score_grads) const;

  /// Per-class scores from an intensity image.
  std::vector<double> readout(const MatrixD& intensity) const;

  /// Adjoint of readout: scatters per-class score gradients to the plane.
  MatrixD scatter(const std::vector<double>& grad_scores) const;

  /// argmax of readout (ties broken toward the lower class index).
  std::size_t predict(const MatrixD& intensity) const;

 private:
  DetectorMode mode_;
  DetectorLayout layout_;
  std::size_t num_classes_;
};

}  // namespace odonn::donn

#include "donn/reflection.hpp"

#include <cmath>

#include "common/error.hpp"
#include "donn/phase_mask.hpp"

namespace odonn::donn {

optics::Field reflective_propagate_through(const DonnModel& model,
                                           const optics::Field& input,
                                           const ReflectionOptions& options) {
  ODONN_CHECK(options.amplitude >= 0.0 && options.amplitude < 1.0,
              "reflection: amplitude must be in [0, 1)");
  const double r2 = options.amplitude * options.amplitude;
  const double transmit = std::sqrt(1.0 - r2);
  const optics::Propagator& prop = model.propagator();

  optics::Field field = input;
  for (const auto& phi : model.phases()) {
    // Incident field after the inter-layer hop.
    optics::Field incident = prop.forward(field);
    if (r2 > 0.0) {
      // One round trip: back to the previous surface and forward again —
      // two additional hops with amplitude r^2.
      const optics::Field bounce = prop.forward(prop.forward(incident));
      MatrixC& values = incident.values();
      const MatrixC& extra = bounce.values();
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] += r2 * extra[i];
      }
    }
    // Transmission through the phase mask.
    const MatrixC w = modulation(phi);
    MatrixC out(incident.values().rows(), incident.values().cols());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = transmit * incident.values()[i] * w[i];
    }
    field = optics::Field(input.grid(), std::move(out));
  }
  return prop.forward(field);
}

std::size_t reflective_predict(const DonnModel& model,
                               const optics::Field& input,
                               const ReflectionOptions& options) {
  const auto field = reflective_propagate_through(model, input, options);
  return model.detector().predict(field.intensity());
}

}  // namespace odonn::donn

#include "donn/discrete.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace odonn::donn {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

double wrap_value(double v) {
  double w = std::fmod(v, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

void check(const QuantizeOptions& options) {
  ODONN_CHECK(options.levels >= 2, "quantize: need at least 2 levels");
}

}  // namespace

MatrixD quantize_phase(const MatrixD& phase, const QuantizeOptions& options) {
  check(options);
  ODONN_CHECK(!phase.empty(), "quantize_phase: empty mask");
  const double step = kTwoPi / static_cast<double>(options.levels);
  MatrixD out(phase.rows(), phase.cols());
  for (std::size_t i = 0; i < phase.size(); ++i) {
    const double v = options.wrap ? wrap_value(phase[i]) : phase[i];
    // Round to the nearest level; level `levels` wraps back to 0.
    long k = std::lround(v / step);
    k %= static_cast<long>(options.levels);
    if (k < 0) k += static_cast<long>(options.levels);
    out[i] = static_cast<double>(k) * step;
  }
  return out;
}

Matrix<std::size_t> quantize_indices(const MatrixD& phase,
                                     const QuantizeOptions& options) {
  check(options);
  const MatrixD q = quantize_phase(phase, options);
  const double step = kTwoPi / static_cast<double>(options.levels);
  Matrix<std::size_t> idx(phase.rows(), phase.cols());
  for (std::size_t i = 0; i < q.size(); ++i) {
    idx[i] = static_cast<std::size_t>(std::lround(q[i] / step)) %
             options.levels;
  }
  return idx;
}

double quantization_error(const MatrixD& phase,
                          const QuantizeOptions& options) {
  check(options);
  ODONN_CHECK(!phase.empty(), "quantization_error: empty mask");
  const MatrixD q = quantize_phase(phase, options);
  double acc = 0.0;
  for (std::size_t i = 0; i < phase.size(); ++i) {
    const double w = options.wrap ? wrap_value(phase[i]) : phase[i];
    double d = std::abs(q[i] - w);
    d = std::min(d, kTwoPi - d);  // wrapped distance
    acc += d;
  }
  return acc / static_cast<double>(phase.size());
}

StePhaseQuantizer::StePhaseQuantizer(const QuantizeOptions& options)
    : options_(options) {
  check(options);
}

std::vector<MatrixD> StePhaseQuantizer::forward(
    const std::vector<MatrixD>& latent) const {
  std::vector<MatrixD> out;
  out.reserve(latent.size());
  for (const auto& phi : latent) out.push_back(quantize_phase(phi, options_));
  return out;
}

GumbelLevelSample gumbel_level_sample(const std::vector<MatrixD>& logits,
                                      double tau, Rng& rng, bool stochastic) {
  ODONN_CHECK(logits.size() >= 2, "gumbel_level_sample: need >= 2 levels");
  ODONN_CHECK(tau > 0.0, "gumbel_level_sample: tau must be positive");
  const std::size_t levels = logits.size();
  const std::size_t rows = logits[0].rows();
  const std::size_t cols = logits[0].cols();
  for (const auto& l : logits) {
    ODONN_CHECK_SHAPE(l.rows() == rows && l.cols() == cols,
                      "gumbel_level_sample: logit shape mismatch");
  }

  GumbelLevelSample result;
  result.soft_phase = MatrixD(rows, cols, 0.0);
  result.probs.assign(levels, MatrixD(rows, cols, 0.0));
  const double step = kTwoPi / static_cast<double>(levels);

  std::vector<double> z(levels);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    double peak = -1e300;
    for (std::size_t k = 0; k < levels; ++k) {
      z[k] = logits[k][i] + (stochastic ? rng.gumbel() : 0.0);
      z[k] /= tau;
      peak = std::max(peak, z[k]);
    }
    double total = 0.0;
    for (std::size_t k = 0; k < levels; ++k) {
      z[k] = std::exp(z[k] - peak);
      total += z[k];
    }
    double expectation = 0.0;
    for (std::size_t k = 0; k < levels; ++k) {
      const double p = z[k] / total;
      result.probs[k][i] = p;
      expectation += p * static_cast<double>(k) * step;
    }
    result.soft_phase[i] = expectation;
  }
  return result;
}

}  // namespace odonn::donn

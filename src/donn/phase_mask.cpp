#include "donn/phase_mask.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn::donn {

MatrixD random_phase_mask(std::size_t n, Rng& rng) {
  ODONN_CHECK(n >= 1, "random_phase_mask: n must be >= 1");
  MatrixD phase(n, n);
  for (std::size_t i = 0; i < phase.size(); ++i) {
    phase[i] = rng.uniform(0.0, 2.0 * M_PI);
  }
  return phase;
}

MatrixD flat_phase_mask(std::size_t n, Rng& rng, double center, double sigma) {
  ODONN_CHECK(n >= 1, "flat_phase_mask: n must be >= 1");
  ODONN_CHECK(sigma >= 0.0, "flat_phase_mask: sigma must be >= 0");
  MatrixD phase(n, n);
  for (std::size_t i = 0; i < phase.size(); ++i) {
    phase[i] = rng.normal(center, sigma);
  }
  return phase;
}

MatrixD wrap_phase(const MatrixD& phase) {
  MatrixD out = phase;
  const double two_pi = 2.0 * M_PI;
  out.transform([two_pi](double v) {
    double w = std::fmod(v, two_pi);
    if (w < 0.0) w += two_pi;
    return w;
  });
  return out;
}

MatrixC modulation(const MatrixD& phase) {
  MatrixC out(phase.rows(), phase.cols());
  for (std::size_t i = 0; i < phase.size(); ++i) {
    out[i] = {std::cos(phase[i]), std::sin(phase[i])};
  }
  return out;
}

}  // namespace odonn::donn

#include "donn/diffmod.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn::donn {

DiffMod::DiffMod(std::shared_ptr<const optics::Propagator> propagator,
                 const MatrixD* phase)
    : propagator_(std::move(propagator)), phase_(phase) {
  ODONN_CHECK(propagator_ != nullptr, "DiffMod: null propagator");
  ODONN_CHECK(phase_ != nullptr, "DiffMod: null phase mask");
  ODONN_CHECK_SHAPE(phase_->rows() == propagator_->grid().n &&
                        phase_->cols() == propagator_->grid().n,
                    "DiffMod: phase mask shape must match grid");
}

optics::Field DiffMod::forward(const optics::Field& input,
                               DiffModCache& cache) const {
  cache.propagated = propagator_->forward(input);
  const MatrixD& phi = *phase_;
  MatrixC out(phi.rows(), phi.cols());
  const MatrixC& prop = cache.propagated.values();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::complex<double> w(std::cos(phi[i]), std::sin(phi[i]));
    out[i] = prop[i] * w;
  }
  return optics::Field(input.grid(), std::move(out));
}

optics::Field DiffMod::forward(const optics::Field& input) const {
  DiffModCache cache;
  return forward(input, cache);
}

optics::Field DiffMod::backward(const optics::Field& grad_output,
                                const DiffModCache& cache,
                                MatrixD& phase_grad) const {
  const MatrixD& phi = *phase_;
  ODONN_CHECK_SHAPE(phase_grad.same_shape(phi),
                    "DiffMod backward: phase gradient shape mismatch");
  const MatrixC& prop = cache.propagated.values();
  const MatrixC& gout = grad_output.values();
  ODONN_CHECK_SHAPE(prop.same_shape(gout),
                    "DiffMod backward: cache/grad shape mismatch");

  MatrixC grad_prop(phi.rows(), phi.cols());
  for (std::size_t i = 0; i < phi.size(); ++i) {
    const std::complex<double> w(std::cos(phi[i]), std::sin(phi[i]));
    // g(w) = conj(f_prop) * g(out); dL/dphi = Re(i * w * conj(g(w))).
    const std::complex<double> gw = std::conj(prop[i]) * gout[i];
    phase_grad[i] += (std::complex<double>(0.0, 1.0) * w * std::conj(gw)).real();
    // g(f_prop) = conj(w) * g(out).
    grad_prop[i] = std::conj(w) * gout[i];
  }
  return propagator_->adjoint(
      optics::Field(grad_output.grid(), std::move(grad_prop)));
}

}  // namespace odonn::donn

#include "donn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace odonn::donn {

MatrixD numerical_gradient(const std::function<double(const MatrixD&)>& f,
                           const MatrixD& at, double h) {
  ODONN_CHECK(h > 0.0, "numerical_gradient: h must be positive");
  MatrixD grad(at.rows(), at.cols());
  MatrixD probe = at;
  for (std::size_t i = 0; i < at.size(); ++i) {
    const double orig = probe[i];
    probe[i] = orig + h;
    const double hi = f(probe);
    probe[i] = orig - h;
    const double lo = f(probe);
    probe[i] = orig;
    grad[i] = (hi - lo) / (2.0 * h);
  }
  return grad;
}

double gradient_rel_error(const MatrixD& analytic, const MatrixD& numeric) {
  ODONN_CHECK_SHAPE(analytic.same_shape(numeric),
                    "gradient_rel_error: shape mismatch");
  double num = 0.0;
  double den = 1.0;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    num = std::max(num, std::abs(analytic[i] - numeric[i]));
    den = std::max({den, std::abs(analytic[i]), std::abs(numeric[i])});
  }
  return num / den;
}

}  // namespace odonn::donn

// Classification losses on detector readouts.
//
// The paper trains with MSE on softmaxed detector sums (§III-A):
//   l = || Softmax(I) - t ||^2
// Raw detector sums can be numerically tiny (the field power is normalized),
// so the readout vector is first normalized; NormMode::TotalPower rescales
// sums to num_classes * s / (sum(|s|) + eps), which keeps softmax in a
// useful dynamic range without changing argmax — the absolute-value total
// also keeps the scale positive and bounded for signed differential-readout
// scores. Cross-entropy is provided as an extension used by ablation benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace odonn::donn {

enum class LossType { SoftmaxMse, CrossEntropy };

enum class NormMode {
  None,        ///< use raw scores as logits
  TotalPower,  ///< logits = C * s / (sum(|s|) + eps); exact for non-negative
               ///< sums, safe for signed differential scores
};

struct LossOptions {
  LossType type = LossType::SoftmaxMse;
  NormMode norm = NormMode::TotalPower;
  double eps = 1e-12;
};

LossType parse_loss(const std::string& name);

struct LossResult {
  double loss = 0.0;
  std::vector<double> grad_sums;  ///< dL/d(raw detector sums)
  std::size_t predicted = 0;      ///< argmax of the raw sums
};

/// Computes loss, prediction and gradient wrt the *raw* detector sums for a
/// one-hot target `label`.
LossResult evaluate_loss(const std::vector<double>& sums, std::size_t label,
                         const LossOptions& options = {});

/// Softmax of a vector (stable; exposed for tests and the 2pi optimizer).
std::vector<double> softmax(const std::vector<double>& logits);

}  // namespace odonn::donn

#include "donn/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "donn/phase_mask.hpp"

namespace odonn::donn {

namespace {

/// Paper mixing ratio lambda*z/(n*pitch^2): how far one pixel's diffraction
/// cone spreads relative to the aperture after one inter-layer hop.
constexpr double kPaperMixingRatio = 0.5735;

}  // namespace

DonnConfig DonnConfig::paper() { return DonnConfig{}; }

DonnConfig DonnConfig::scaled(std::size_t grid_n) {
  ODONN_CHECK(grid_n >= 16, "scaled config needs grid_n >= 16");
  DonnConfig cfg;
  cfg.grid.n = grid_n;
  // lambda*z/(n*pitch^2) = kPaperMixingRatio  =>  pitch as below; at n=200
  // this recovers the paper's 36 um pixels exactly.
  cfg.grid.pitch = std::sqrt(cfg.wavelength * cfg.distance /
                             (kPaperMixingRatio * static_cast<double>(grid_n)));
  cfg.detector_size = std::max<std::size_t>(2, grid_n / 10);
  return cfg;
}

DonnModel::DonnModel(const DonnConfig& config, Rng& rng)
    : config_(config),
      propagator_(std::make_shared<const optics::Propagator>(
          config.grid,
          optics::PropagatorOptions{
              {config.kernel, config.wavelength, config.distance},
              config.pad2x})),
      detector_(ReadoutStrategy::evenly_spaced(config.detector, config.grid.n,
                                               config.num_classes,
                                               config.detector_size)) {
  ODONN_CHECK(config.num_layers >= 1, "model needs at least one layer");
  phases_.reserve(config.num_layers);
  for (std::size_t i = 0; i < config.num_layers; ++i) {
    phases_.push_back(config.init == PhaseInit::Flat
                          ? flat_phase_mask(config.grid.n, rng)
                          : random_phase_mask(config.grid.n, rng));
  }
}

void DonnModel::set_phases(std::vector<MatrixD> phases) {
  ODONN_CHECK_SHAPE(phases.size() == phases_.size(),
                    "set_phases: layer count mismatch");
  for (const auto& phi : phases) {
    ODONN_CHECK_SHAPE(phi.rows() == config_.grid.n && phi.cols() == config_.grid.n,
                      "set_phases: mask shape mismatch");
  }
  phases_ = std::move(phases);
  apply_masks();
}

void DonnModel::set_masks(std::vector<sparsify::SparsityMask> masks) {
  if (!masks.empty()) {
    ODONN_CHECK_SHAPE(masks.size() == phases_.size(),
                      "set_masks: layer count mismatch");
    for (const auto& m : masks) {
      ODONN_CHECK_SHAPE(m.rows() == config_.grid.n && m.cols() == config_.grid.n,
                        "set_masks: mask shape mismatch");
    }
  }
  masks_ = std::move(masks);
  apply_masks();
}

void DonnModel::clear_masks() { masks_.clear(); }

void DonnModel::apply_masks() {
  if (masks_.empty()) return;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    sparsify::apply_mask(phases_[i], masks_[i]);
  }
}

void DonnModel::mask_gradients(std::vector<MatrixD>& grads) const {
  if (masks_.empty()) return;
  ODONN_CHECK_SHAPE(grads.size() == masks_.size(),
                    "mask_gradients: layer count mismatch");
  for (std::size_t i = 0; i < grads.size(); ++i) {
    sparsify::apply_mask(grads[i], masks_[i]);
  }
}

optics::Field DonnModel::propagate_through(const optics::Field& input) const {
  optics::Field field = input;
  for (const auto& phi : phases_) {
    DiffMod layer(propagator_, &phi);
    field = layer.forward(field);
  }
  return propagator_->forward(field);
}

MatrixD DonnModel::output_intensity(const optics::Field& input) const {
  return propagate_through(input).intensity();
}

std::vector<double> DonnModel::detector_sums(const optics::Field& input) const {
  return detector_.readout(output_intensity(input));
}

std::size_t DonnModel::predict(const optics::Field& input) const {
  return detector_.predict(output_intensity(input));
}

std::vector<MatrixC> DonnModel::modulation_tables() const {
  std::vector<MatrixC> mods;
  mods.reserve(phases_.size());
  for (const auto& phi : phases_) {
    MatrixC w(phi.rows(), phi.cols());
    for (std::size_t i = 0; i < phi.size(); ++i) {
      // Same cos/sin evaluation as DiffMod::forward, so the batched path
      // multiplies by bitwise-identical modulation factors.
      w[i] = std::complex<double>(std::cos(phi[i]), std::sin(phi[i]));
    }
    mods.push_back(std::move(w));
  }
  return mods;
}

void DonnModel::infer_batch(const std::vector<optics::Field>& inputs,
                            const std::vector<MatrixC>& modulations,
                            std::vector<std::size_t>* predictions,
                            std::vector<std::vector<double>>* sums,
                            std::vector<MatrixD>* intensities) const {
  const std::size_t n = config_.grid.n;
  ODONN_CHECK_SHAPE(modulations.size() == phases_.size(),
                    "infer_batch: modulation table count mismatch");
  for (const auto& w : modulations) {
    ODONN_CHECK_SHAPE(w.rows() == n && w.cols() == n,
                      "infer_batch: modulation table shape mismatch");
  }
  for (const auto& input : inputs) {
    ODONN_CHECK_SHAPE(input.grid() == config_.grid,
                      "infer_batch: input grid mismatch");
  }
  if (predictions) predictions->resize(inputs.size());
  if (sums) sums->resize(inputs.size());
  if (intensities) intensities->resize(inputs.size());
  if (inputs.empty()) return;

  // Samples are independent, so chunks write only to their own output
  // slots: results are deterministic regardless of scheduling. Scratch
  // buffers are hoisted per chunk and reused across that chunk's samples,
  // making steady-state per-sample work allocation-free.
  parallel_for_chunks(
      0, inputs.size(),
      [&](std::size_t lo, std::size_t hi) {
        MatrixC buf;
        optics::Propagator::Workspace workspace;
        MatrixD intensity(n, n);
        for (std::size_t k = lo; k < hi; ++k) {
          buf = inputs[k].values();
          for (const auto& w : modulations) {
            propagator_->forward_inplace(buf, workspace);
            for (std::size_t i = 0; i < buf.size(); ++i) buf[i] *= w[i];
          }
          propagator_->forward_inplace(buf, workspace);
          for (std::size_t i = 0; i < buf.size(); ++i) {
            intensity[i] = std::norm(buf[i]);
          }
          auto class_sums = detector_.readout(intensity);
          if (predictions) {
            (*predictions)[k] = static_cast<std::size_t>(
                std::max_element(class_sums.begin(), class_sums.end()) -
                class_sums.begin());
          }
          if (sums) (*sums)[k] = std::move(class_sums);
          if (intensities) (*intensities)[k] = intensity;
        }
      },
      /*grain=*/1);
}

std::vector<std::size_t> DonnModel::predict_batch(
    const std::vector<optics::Field>& inputs) const {
  std::vector<std::size_t> predictions;
  infer_batch(inputs, modulation_tables(), &predictions, nullptr, nullptr);
  return predictions;
}

std::vector<std::vector<double>> DonnModel::detector_sums_batch(
    const std::vector<optics::Field>& inputs) const {
  std::vector<std::vector<double>> sums;
  infer_batch(inputs, modulation_tables(), nullptr, &sums, nullptr);
  return sums;
}

std::vector<MatrixD> DonnModel::output_intensity_batch(
    const std::vector<optics::Field>& inputs) const {
  std::vector<MatrixD> intensities;
  infer_batch(inputs, modulation_tables(), nullptr, nullptr, &intensities);
  return intensities;
}

std::vector<MatrixD> DonnModel::zero_gradients() const {
  std::vector<MatrixD> grads;
  grads.reserve(phases_.size());
  for (const auto& phi : phases_) {
    grads.emplace_back(phi.rows(), phi.cols(), 0.0);
  }
  return grads;
}

DonnModel::ForwardBackwardResult DonnModel::forward_backward(
    const optics::Field& input, std::size_t label,
    std::vector<MatrixD>& phase_grads, const LossOptions& loss_options) const {
  ODONN_CHECK_SHAPE(phase_grads.size() == phases_.size(),
                    "forward_backward: gradient count mismatch");

  // Forward with per-layer caches.
  std::vector<DiffModCache> caches(phases_.size());
  optics::Field field = input;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    DiffMod layer(propagator_, &phases_[i]);
    field = layer.forward(field, caches[i]);
  }
  const optics::Field at_detector = propagator_->forward(field);
  const MatrixD intensity = at_detector.intensity();
  const auto sums = detector_.readout(intensity);
  const LossResult lr = evaluate_loss(sums, label, loss_options);

  // Backward: dL/dI -> g(f) = 2 f dL/dI -> adjoint propagation -> layers.
  const MatrixD grad_intensity = detector_.scatter(lr.grad_sums);
  MatrixC gf(intensity.rows(), intensity.cols());
  const MatrixC& fdet = at_detector.values();
  for (std::size_t i = 0; i < gf.size(); ++i) {
    gf[i] = 2.0 * fdet[i] * grad_intensity[i];
  }
  optics::Field grad = propagator_->adjoint(
      optics::Field(input.grid(), std::move(gf)));
  for (std::size_t i = phases_.size(); i-- > 0;) {
    DiffMod layer(propagator_, &phases_[i]);
    grad = layer.backward(grad, caches[i], phase_grads[i]);
  }
  return {lr.loss, lr.predicted};
}

}  // namespace odonn::donn

#include "donn/detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace odonn::donn {

namespace {

bool overlaps(const DetectorRegion& a, const DetectorRegion& b) {
  const bool row_sep = a.r0 + a.size <= b.r0 || b.r0 + b.size <= a.r0;
  const bool col_sep = a.c0 + a.size <= b.c0 || b.c0 + b.size <= a.c0;
  return !(row_sep || col_sep);
}

}  // namespace

DetectorLayout::DetectorLayout(std::size_t grid_n,
                               std::vector<DetectorRegion> regions)
    : grid_n_(grid_n), regions_(std::move(regions)) {
  ODONN_CHECK(grid_n_ >= 2, "detector: grid too small");
  ODONN_CHECK(!regions_.empty(), "detector: no regions");
  for (const auto& region : regions_) {
    ODONN_CHECK(region.size >= 1, "detector: empty region");
    if (region.r0 + region.size > grid_n_ ||
        region.c0 + region.size > grid_n_) {
      throw ConfigError("detector region outside the plane");
    }
  }
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    for (std::size_t j = i + 1; j < regions_.size(); ++j) {
      if (overlaps(regions_[i], regions_[j])) {
        throw ConfigError("detector regions overlap");
      }
    }
  }
}

DetectorLayout DetectorLayout::evenly_spaced(std::size_t grid_n,
                                             std::size_t num_classes,
                                             std::size_t region_size) {
  ODONN_CHECK(num_classes >= 1, "detector: need at least one class");
  ODONN_CHECK(region_size >= 1, "detector: region size must be >= 1");

  // Choose the most-square factorization r x c with r <= c covering all
  // classes (10 -> 2 x 5, 4 -> 2 x 2, 7 -> 2 x 4 with 7 used).
  std::size_t rows = static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(num_classes))));
  rows = std::max<std::size_t>(rows, 1);
  while (rows > 1 && num_classes % rows != 0) --rows;
  if (rows == 1 && num_classes > 3) {
    // Prime class count: use a near-square grid with unused trailing cells.
    rows = static_cast<std::size_t>(
        std::floor(std::sqrt(static_cast<double>(num_classes))));
  }
  const std::size_t cols = (num_classes + rows - 1) / rows;

  std::vector<DetectorRegion> regions;
  regions.reserve(num_classes);
  for (std::size_t idx = 0; idx < num_classes; ++idx) {
    const std::size_t gr = idx / cols;
    const std::size_t gc = idx % cols;
    // Region centers at fractions (g+1)/(count+1) of the plane.
    const double cr = static_cast<double>(gr + 1) /
                      static_cast<double>(rows + 1) *
                      static_cast<double>(grid_n);
    const double cc = static_cast<double>(gc + 1) /
                      static_cast<double>(cols + 1) *
                      static_cast<double>(grid_n);
    const long r0 = std::lround(cr - static_cast<double>(region_size) / 2.0);
    const long c0 = std::lround(cc - static_cast<double>(region_size) / 2.0);
    if (r0 < 0 || c0 < 0 ||
        static_cast<std::size_t>(r0) + region_size > grid_n ||
        static_cast<std::size_t>(c0) + region_size > grid_n) {
      throw ConfigError("detector regions do not fit on the plane; "
                        "reduce region_size or class count");
    }
    regions.push_back({static_cast<std::size_t>(r0),
                       static_cast<std::size_t>(c0), region_size});
  }
  return DetectorLayout(grid_n, std::move(regions));
}

std::vector<double> DetectorLayout::readout(const MatrixD& intensity) const {
  ODONN_CHECK_SHAPE(intensity.rows() == grid_n_ && intensity.cols() == grid_n_,
                    "detector readout: intensity shape mismatch");
  std::vector<double> sums(regions_.size(), 0.0);
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    const auto& region = regions_[k];
    double acc = 0.0;
    for (std::size_t r = region.r0; r < region.r0 + region.size; ++r) {
      for (std::size_t c = region.c0; c < region.c0 + region.size; ++c) {
        acc += intensity(r, c);
      }
    }
    sums[k] = acc;
  }
  return sums;
}

MatrixD DetectorLayout::scatter(const std::vector<double>& grad_sums) const {
  ODONN_CHECK_SHAPE(grad_sums.size() == regions_.size(),
                    "detector scatter: class count mismatch");
  MatrixD out(grid_n_, grid_n_, 0.0);
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    const auto& region = regions_[k];
    for (std::size_t r = region.r0; r < region.r0 + region.size; ++r) {
      for (std::size_t c = region.c0; c < region.c0 + region.size; ++c) {
        out(r, c) += grad_sums[k];
      }
    }
  }
  return out;
}

std::size_t DetectorLayout::predict(const MatrixD& intensity) const {
  const auto sums = readout(intensity);
  return static_cast<std::size_t>(
      std::max_element(sums.begin(), sums.end()) - sums.begin());
}

const char* detector_mode_name(DetectorMode mode) {
  switch (mode) {
    case DetectorMode::Standard:
      return "standard";
    case DetectorMode::Differential:
      return "differential";
  }
  return "?";
}

DetectorMode parse_detector_mode(const std::string& name) {
  if (name == "standard") return DetectorMode::Standard;
  if (name == "differential") return DetectorMode::Differential;
  throw ConfigError("unknown detector mode '" + name +
                    "' (expected standard|differential)");
}

ReadoutStrategy::ReadoutStrategy(DetectorMode mode, DetectorLayout layout)
    : mode_(mode), layout_(std::move(layout)) {
  const std::size_t regions = layout_.regions().size();
  if (mode_ == DetectorMode::Differential) {
    ODONN_CHECK(regions % 2 == 0 && regions >= 2,
                "differential readout needs an even region count (+/- pairs)");
    num_classes_ = regions / 2;
  } else {
    num_classes_ = regions;
  }
}

ReadoutStrategy ReadoutStrategy::evenly_spaced(DetectorMode mode,
                                               std::size_t grid_n,
                                               std::size_t num_classes,
                                               std::size_t region_size) {
  const std::size_t regions =
      mode == DetectorMode::Differential ? 2 * num_classes : num_classes;
  return ReadoutStrategy(
      mode, DetectorLayout::evenly_spaced(grid_n, regions, region_size));
}

std::vector<double> ReadoutStrategy::scores_from_region_sums(
    std::vector<double> region_sums) const {
  ODONN_CHECK_SHAPE(region_sums.size() == num_regions(),
                    "readout: region sum count mismatch");
  if (mode_ == DetectorMode::Standard) return region_sums;
  std::vector<double> scores(num_classes_);
  for (std::size_t k = 0; k < num_classes_; ++k) {
    scores[k] = region_sums[2 * k] - region_sums[2 * k + 1];
  }
  return scores;
}

std::vector<double> ReadoutStrategy::region_grads_from_score_grads(
    const std::vector<double>& score_grads) const {
  ODONN_CHECK_SHAPE(score_grads.size() == num_classes_,
                    "readout adjoint: class count mismatch");
  if (mode_ == DetectorMode::Standard) return score_grads;
  std::vector<double> region_grads(num_regions());
  for (std::size_t k = 0; k < num_classes_; ++k) {
    region_grads[2 * k] = score_grads[k];
    region_grads[2 * k + 1] = -score_grads[k];
  }
  return region_grads;
}

std::vector<double> ReadoutStrategy::readout(const MatrixD& intensity) const {
  return scores_from_region_sums(layout_.readout(intensity));
}

MatrixD ReadoutStrategy::scatter(const std::vector<double>& grad_scores) const {
  return layout_.scatter(region_grads_from_score_grads(grad_scores));
}

std::size_t ReadoutStrategy::predict(const MatrixD& intensity) const {
  const auto scores = readout(intensity);
  return static_cast<std::size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace odonn::donn

// Discrete phase-control levels.
//
// Physical phase modulators (SLMs, printed masks) offer a finite number of
// control levels; the paper's §I lists "discrete control levels in optical
// devices" among the sources of the modelling/deployment mismatch, and its
// Table I compares against the discrete-codesign line of work ([6], [8]).
// This module provides:
//  * uniform phase quantizers over [0, 2*pi) with k levels;
//  * straight-through-estimator (STE) quantization-aware training support
//    (quantize in the forward model, pass gradients through unchanged);
//  * a Gumbel-Softmax categorical relaxation over the level set — the
//    mechanism of the codesign paper [8], reusing the same machinery as the
//    2*pi smoother.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace odonn::donn {

struct QuantizeOptions {
  std::size_t levels = 16;   ///< number of control levels over [0, 2*pi)
  bool wrap = true;          ///< wrap input phases into [0, 2*pi) first
};

/// Nearest-level quantization of a phase mask. With wrap=true, values are
/// first reduced mod 2*pi; level k maps to 2*pi*k/levels.
MatrixD quantize_phase(const MatrixD& phase, const QuantizeOptions& options = {});

/// Index of the nearest level for every pixel (0..levels-1).
Matrix<std::size_t> quantize_indices(const MatrixD& phase,
                                     const QuantizeOptions& options = {});

/// Mean absolute quantization error |q(phi) - wrap(phi)| (wrapped distance).
double quantization_error(const MatrixD& phase, const QuantizeOptions& options = {});

/// Straight-through estimator state for quantization-aware training: the
/// forward model sees quantized phases; optimizer steps apply to the latent
/// continuous phases (gradients pass through the quantizer unchanged).
class StePhaseQuantizer {
 public:
  explicit StePhaseQuantizer(const QuantizeOptions& options);

  const QuantizeOptions& options() const { return options_; }

  /// Quantized view of the latent phases (what the optics applies).
  std::vector<MatrixD> forward(const std::vector<MatrixD>& latent) const;

  /// STE backward is the identity — provided for symmetry/documentation.
  /// Gradients computed against the quantized phases apply to the latent
  /// parameters directly.
  const std::vector<MatrixD>& backward(const std::vector<MatrixD>& grads) const {
    return grads;
  }

 private:
  QuantizeOptions options_;
};

/// One Gumbel-Softmax relaxation step over the discrete level set (the
/// codesign mechanism of [8]): given per-pixel level logits (n x n x levels
/// flattened to levels matrices), samples a soft phase expectation and its
/// gradient chain factor. Exposed at this granularity so tests can verify
/// the categorical limit; full discrete training uses quantize-aware STE.
struct GumbelLevelSample {
  MatrixD soft_phase;            ///< sum_k p_k * phase_k per pixel
  std::vector<MatrixD> probs;    ///< per-level probabilities (softmax)
};
GumbelLevelSample gumbel_level_sample(const std::vector<MatrixD>& logits,
                                      double tau, Rng& rng,
                                      bool stochastic = true);

}  // namespace odonn::donn

// Full physics-aware pipeline on one dataset: runs a chosen recipe
// (baseline / ours-a / ours-b / ours-c / ours-d) end to end — dense
// training, SLR block sparsification, roughness + intra-block
// regularization, 2*pi smoothing — and prints the paper-style table row.
//
//   ./train_and_smooth [dataset=mnist|fmnist|kmnist|emnist] [recipe=ours-c]
//                      [grid=48] [samples=1200] [epochs=3] [sparsity=0.1]
//                      [block=5] [p=0.1] [q=10] [seed=7]
#include <cstdio>

#include "common/config.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "train/recipe.hpp"

using namespace odonn;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto family = data::parse_family(cfg.get_string("dataset", "mnist"));
  const auto kind = train::parse_recipe(cfg.get_string("recipe", "ours-c"));
  const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 48));
  const std::size_t samples = static_cast<std::size_t>(cfg.get_int("samples", 1200));
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  train::RecipeOptions opt;
  opt.model = donn::DonnConfig::scaled(grid);
  opt.epochs_dense = static_cast<std::size_t>(cfg.get_int("epochs", 3));
  opt.epochs_sparse = std::max<std::size_t>(1, opt.epochs_dense / 2);
  opt.batch_size = 50;
  opt.roughness_p = cfg.get_double("p", 0.1);
  opt.intra_q = cfg.get_double("q", 10.0);
  opt.scheme.ratio = cfg.get_double("sparsity", 0.1);
  opt.scheme.block_size = static_cast<std::size_t>(cfg.get_int("block", 5));
  opt.seed = seed;
  opt.verbose = cfg.get_bool("verbose", false);

  std::printf("dataset=%s recipe=%s grid=%zu samples=%zu\n",
              data::family_name(family), train::recipe_name(kind), grid,
              samples);

  const auto raw = data::make_synthetic(family, samples, seed + 10);
  const auto resized = data::resize_dataset(raw, grid);
  Rng split_rng(seed + 11);
  const auto [train_set, test_set] = resized.split(0.8, split_rng);

  const auto row = train::run_recipe(kind, opt, train_set, test_set);
  std::printf("%-9s | acc %.2f%% | R before 2pi %8.2f | R after 2pi %8.2f | "
              "sparsity %.2f | deployed %.2f%% -> %.2f%% (after 2pi)\n",
              row.name.c_str(), 100.0 * row.accuracy, row.roughness_before,
              row.roughness_after, row.sparsity,
              100.0 * row.deployed_accuracy,
              100.0 * row.deployed_accuracy_after_2pi);
  return 0;
}

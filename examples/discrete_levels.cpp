// Discrete phase control levels (the paper's §I mismatch source and the
// [6]/[8] codesign setting): shows (1) how post-hoc quantization of a
// continuously trained DONN degrades accuracy as the level count shrinks,
// and (2) how straight-through-estimator (STE) quantization-aware training
// recovers most of the loss — the model learns phases that survive the
// device's level grid.
//
//   ./discrete_levels [grid=48] [samples=800] [epochs=3] [levels=4] [seed=7]
#include <cstdio>

#include "common/config.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "donn/discrete.hpp"
#include "donn/model.hpp"
#include "train/optim.hpp"
#include "train/trainer.hpp"

using namespace odonn;

namespace {

/// One epoch of STE quantization-aware training: the optics sees quantized
/// phases, the optimizer updates the latent continuous ones.
void ste_epoch(donn::DonnModel& model, std::vector<MatrixD>& latent,
               const donn::StePhaseQuantizer& ste,
               const data::Dataset& train_set, train::Optimizer& optimizer,
               std::size_t batch_size) {
  const std::size_t count = train_set.size();
  for (std::size_t begin = 0; begin < count; begin += batch_size) {
    const std::size_t end = std::min(count, begin + batch_size);
    model.set_phases(ste.forward(latent));
    auto grads = model.zero_gradients();
    for (std::size_t i = begin; i < end; ++i) {
      const auto input = optics::encode_image(train_set.image(i),
                                              model.config().grid);
      model.forward_backward(input, train_set.label(i), grads, {});
    }
    const double inv = 1.0 / static_cast<double>(end - begin);
    for (auto& g : grads) g *= inv;
    // STE: gradients computed at the quantized point apply to the latent.
    optimizer.step(latent, grads);
  }
  model.set_phases(ste.forward(latent));
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 48));
  const std::size_t samples = static_cast<std::size_t>(cfg.get_int("samples", 800));
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("epochs", 3));
  const std::size_t levels = static_cast<std::size_t>(cfg.get_int("levels", 4));
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  const auto raw = data::make_synthetic(data::SyntheticFamily::Digits, samples, seed);
  const auto resized = data::resize_dataset(raw, grid);
  Rng split_rng(seed + 1);
  const auto [train_set, test_set] = resized.split(0.8, split_rng);

  // Continuous training first.
  donn::DonnConfig config = donn::DonnConfig::scaled(grid);
  Rng rng(seed + 2);
  donn::DonnModel model(config, rng);
  {
    train::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 50;
    topt.lr = 0.2;
    train::Trainer trainer(model, train_set, topt);
    trainer.run();
  }
  const double continuous_acc = train::evaluate_accuracy(model, test_set);
  std::printf("continuous model:     %.2f%%\n", 100.0 * continuous_acc);

  // Post-hoc quantization sweep.
  std::printf("\npost-hoc quantization:\n  %-8s %10s\n", "levels", "accuracy");
  for (std::size_t k : {2u, 4u, 8u, 16u}) {
    donn::DonnModel q = model;
    std::vector<MatrixD> quantized;
    for (const auto& phi : model.phases()) {
      quantized.push_back(donn::quantize_phase(phi, {k, true}));
    }
    q.set_phases(std::move(quantized));
    std::printf("  %-8zu %9.2f%%\n", k,
                100.0 * train::evaluate_accuracy(q, test_set));
  }

  // STE quantization-aware fine-tuning at the requested level count.
  donn::StePhaseQuantizer ste({levels, true});
  std::vector<MatrixD> latent = model.phases();
  donn::DonnModel ste_model = model;
  train::Adam optimizer(0.01);
  for (std::size_t e = 0; e < std::max<std::size_t>(1, epochs / 2); ++e) {
    ste_epoch(ste_model, latent, ste, train_set, optimizer, 50);
  }
  const double ste_acc = train::evaluate_accuracy(ste_model, test_set);

  donn::DonnModel posthoc = model;
  {
    std::vector<MatrixD> quantized;
    for (const auto& phi : model.phases()) {
      quantized.push_back(donn::quantize_phase(phi, {levels, true}));
    }
    posthoc.set_phases(std::move(quantized));
  }
  std::printf("\nat %zu levels: post-hoc %.2f%%  vs  STE-finetuned %.2f%%\n",
              levels, 100.0 * train::evaluate_accuracy(posthoc, test_set),
              100.0 * ste_acc);
  std::printf("(STE training quantizes in the forward pass and updates the "
              "latent continuous phases.)\n");
  return 0;
}

// Fig. 5-style mask gallery: trains the model variants and renders the
// second diffractive layer of each to colormapped PPM images, so the
// visual progression Baseline -> Sparsify -> +Roughness -> +Intra ->
// 2pi-optimized can be inspected directly (sparsified blocks render black,
// exactly like the paper's figure).
//
//   ./mask_gallery [dataset=emnist] [grid=48] [samples=800] [outdir=gallery]
#include <cstdio>
#include <filesystem>

#include "common/config.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "io/mask_render.hpp"
#include "train/recipe.hpp"

using namespace odonn;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto family = data::parse_family(cfg.get_string("dataset", "emnist"));
  const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 48));
  const std::size_t samples = static_cast<std::size_t>(cfg.get_int("samples", 800));
  const std::string outdir = cfg.get_string("outdir", "gallery");
  std::filesystem::create_directories(outdir);

  train::RecipeOptions opt;
  opt.model = donn::DonnConfig::scaled(grid);
  opt.epochs_dense = static_cast<std::size_t>(cfg.get_int("epochs", 2));
  opt.epochs_sparse = 1;
  opt.batch_size = 50;
  opt.scheme.block_size = std::max<std::size_t>(2, grid / 10);
  opt.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  const auto raw = data::make_synthetic(family, samples, opt.seed + 10);
  const auto resized = data::resize_dataset(raw, grid);
  Rng split_rng(opt.seed + 11);
  const auto [train_set, test_set] = resized.split(0.8, split_rng);

  // The paper's Fig. 5 shows the SECOND diffractive layer of each variant,
  // plus the 2*pi-optimized version of the Ours-D mask.
  const struct {
    const char* file;
    train::RecipeKind kind;
  } panels[] = {{"1_baseline.ppm", train::RecipeKind::Baseline},
                {"2_sparsify.ppm", train::RecipeKind::OursB},
                {"3_sparse_rough.ppm", train::RecipeKind::OursC},
                {"4_intra_smooth.ppm", train::RecipeKind::OursD}};

  for (const auto& panel : panels) {
    const auto row = train::run_recipe(panel.kind, opt, train_set, test_set);
    const std::size_t layer = std::min<std::size_t>(1, row.trained_phases.size() - 1);
    io::render_phase_mask(outdir + "/" + panel.file, row.trained_phases[layer]);
    std::printf("%-22s acc %6.2f%%  R %8.2f -> %8.2f\n", panel.file,
                100.0 * row.accuracy, row.roughness_before,
                row.roughness_after);
    if (panel.kind == train::RecipeKind::OursD) {
      io::MaskRenderOptions render;
      render.zeros_black = false;  // lifted zeros are no longer sparse
      io::render_phase_mask(outdir + "/5_intra_smooth_2pi.ppm",
                            row.smoothed_phases[layer], render);
    }
  }
  std::printf("gallery written to %s/\n", outdir.c_str());
  return 0;
}

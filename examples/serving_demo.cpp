// Serving demo: train a small DONN, publish two pipeline variants (dense
// and 2*pi-smoothed) in a ModelRegistry, and serve traffic through the
// asynchronous InferenceEngine — ending with the paper's §III-D2 claim
// observed live: the smoothed variant answers every request identically to
// the dense one while its masks are far smoother to fabricate.
//
//   ./serving_demo [grid=32] [samples=240] [epochs=2] [requests=200] [seed=7]
#include <cstdio>
#include <future>
#include <vector>

#include "common/config.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "donn/model.hpp"
#include "donn/serialize.hpp"
#include "optics/encode.hpp"
#include "roughness/report.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "train/trainer.hpp"

using namespace odonn;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 32));
  const std::size_t samples =
      static_cast<std::size_t>(cfg.get_int("samples", 240));
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("epochs", 2));
  const std::size_t requests =
      static_cast<std::size_t>(cfg.get_int("requests", 200));
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  // 1. Train a small model (same recipe shape as examples/quickstart).
  const auto raw = data::make_synthetic(data::SyntheticFamily::Digits, samples,
                                        seed);
  const auto resized = data::resize_dataset(raw, grid);
  Rng split_rng(seed + 1);
  const auto [train_set, test_set] = resized.split(0.8, split_rng);

  donn::DonnConfig config = donn::DonnConfig::scaled(grid);
  Rng rng(seed + 2);
  donn::DonnModel model(config, rng);
  train::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = 50;
  topt.lr = 0.2;
  topt.seed = seed + 3;
  train::Trainer trainer(model, train_set, topt);
  trainer.run();
  std::printf("trained: %zu layers on %zux%zu grid\n", model.num_layers(),
              grid, grid);

  // 2. Produce the 2*pi-smoothed variant of the same masks.
  const auto rough_before = roughness::report(model.phases());
  const auto smoothed = smooth2pi::optimize_2pi_all(model.phases(), {});
  std::vector<MatrixD> smoothed_phases;
  double rough_after = 0.0;
  for (const auto& r : smoothed) {
    smoothed_phases.push_back(r.optimized);
    rough_after += r.roughness_after;
  }
  rough_after /= static_cast<double>(smoothed.size());

  // 3. Publish both variants — the smoothed one via a serialize round-trip,
  //    as a deployment would load it from a checkpoint artifact.
  auto registry = std::make_shared<serve::ModelRegistry>();
  donn::DonnModel smoothed_model(config, rng);
  smoothed_model.set_phases(std::move(smoothed_phases));
  const std::string path = "serving_demo_smoothed.odnn";
  donn::save_model(smoothed_model, path);
  registry->add("dense", std::move(model));
  registry->load("smoothed", path);
  std::printf("registry: serving %zu variants (dense R=%.2f, smoothed "
              "R=%.2f)\n", registry->size(), rough_before.overall, rough_after);

  // 4. Serve interleaved traffic against both variants.
  serve::EngineOptions options;
  options.max_batch = 32;
  serve::InferenceEngine engine(registry, options);
  const std::size_t n_requests = std::min(requests, test_set.size());
  std::vector<std::future<serve::PredictResult>> dense_futures;
  std::vector<std::future<serve::PredictResult>> smoothed_futures;
  for (std::size_t k = 0; k < n_requests; ++k) {
    const optics::Field input =
        optics::encode_image(test_set.image(k), config.grid);
    dense_futures.push_back(engine.submit("dense", input));
    smoothed_futures.push_back(engine.submit("smoothed", input));
  }
  std::size_t agree = 0;
  std::size_t correct = 0;
  for (std::size_t k = 0; k < n_requests; ++k) {
    const auto dense = dense_futures[k].get();
    const auto smooth = smoothed_futures[k].get();
    agree += dense.predicted == smooth.predicted;
    correct += dense.predicted == test_set.label(k);
  }

  const auto stats = engine.stats();
  std::printf("served %llu requests in %llu batches (mean batch %.1f)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_size);
  std::printf("latency p50/p99: %.2f / %.2f ms, throughput %.0f req/s\n",
              stats.p50_ms, stats.p99_ms, stats.throughput_rps);
  std::printf("dense accuracy on served traffic: %.3f\n",
              static_cast<double>(correct) / static_cast<double>(n_requests));
  std::printf("dense vs smoothed agreement: %zu/%zu (2*pi smoothing is "
              "inference-invariant)\n", agree, n_requests);
  return agree == n_requests ? 0 : 1;
}

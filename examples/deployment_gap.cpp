// Deployment-gap demonstration (the paper's motivation, §II-B): a DONN that
// looks accurate in numerical simulation loses accuracy once interpixel
// crosstalk corrupts the fabricated masks — and the loss shrinks as the
// masks get smoother. Trains Baseline and Ours-C, then sweeps crosstalk
// strength and prints simulated vs "deployed" accuracy for both.
//
//   ./deployment_gap [dataset=mnist] [grid=48] [samples=1000] [epochs=3]
#include <cstdio>

#include "common/config.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "train/recipe.hpp"

using namespace odonn;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto family = data::parse_family(cfg.get_string("dataset", "mnist"));
  const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 48));
  const std::size_t samples = static_cast<std::size_t>(cfg.get_int("samples", 1000));

  train::RecipeOptions opt;
  opt.model = donn::DonnConfig::scaled(grid);
  opt.epochs_dense = static_cast<std::size_t>(cfg.get_int("epochs", 3));
  opt.batch_size = 50;
  opt.scheme.block_size = std::max<std::size_t>(2, grid / 10);
  opt.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  const auto raw = data::make_synthetic(family, samples, opt.seed + 10);
  const auto resized = data::resize_dataset(raw, grid);
  Rng split_rng(opt.seed + 11);
  const auto [train_set, test_set] = resized.split(0.8, split_rng);

  const auto baseline =
      train::run_recipe(train::RecipeKind::Baseline, opt, train_set, test_set);
  const auto ours_c =
      train::run_recipe(train::RecipeKind::OursC, opt, train_set, test_set);

  std::printf("variant   | simulated | R_overall | crosstalk sweep (deployed accuracy)\n");
  std::printf("          |  accuracy | after 2pi |  s=0.25   s=0.50   s=0.75\n");
  for (const auto* row : {&baseline, &ours_c}) {
    std::printf("%-9s | %8.2f%% | %9.2f |", row->name.c_str(),
                100.0 * row->accuracy, row->roughness_after);
    for (double strength : {0.25, 0.50, 0.75}) {
      Rng rng(opt.seed);
      donn::DonnModel model(opt.model, rng);
      model.set_phases(row->smoothed_phases);
      donn::CrosstalkOptions ct;
      ct.strength = strength;
      const double deployed =
          train::evaluate_deployed_accuracy(model, test_set, ct);
      std::printf("  %6.2f%%", 100.0 * deployed);
    }
    std::printf("\n");
  }
  std::printf("\nsmoother masks (lower R_overall) should lose less accuracy "
              "at every crosstalk strength.\n");
  return 0;
}

// Quickstart: build a 3-layer diffractive ONN, train it on a synthetic
// digit task, report accuracy and mask roughness, then smooth the masks
// with the 2*pi optimizer — the library's core loop in ~70 lines.
//
//   ./quickstart [grid=48] [samples=600] [epochs=3] [seed=7]
#include <cstdio>

#include "common/config.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "donn/model.hpp"
#include "roughness/report.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "train/recipe.hpp"
#include "train/trainer.hpp"

using namespace odonn;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 48));
  const std::size_t samples = static_cast<std::size_t>(cfg.get_int("samples", 600));
  const std::size_t epochs = static_cast<std::size_t>(cfg.get_int("epochs", 3));
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  // 1. A 10-class digit task (procedural MNIST stand-in), upsampled to the
  //    optical grid exactly like the paper interpolates 28x28 -> 200x200.
  const auto raw = data::make_synthetic(data::SyntheticFamily::Digits, samples, seed);
  const auto resized = data::resize_dataset(raw, grid);
  Rng split_rng(seed + 1);
  const auto [train_set, test_set] = resized.split(0.8, split_rng);

  // 2. A 3-layer DONN with paper-equivalent optics, shrunk to `grid`.
  donn::DonnConfig config = donn::DonnConfig::scaled(grid);
  Rng rng(seed + 2);
  donn::DonnModel model(config, rng);
  std::printf("DONN: %zu layers, grid %zux%zu, pitch %.1f um, lambda %.0f nm, z %.2f cm\n",
              model.num_layers(), grid, grid, config.grid.pitch * 1e6,
              config.wavelength * 1e9, config.distance * 1e2);

  // 3. Train with the paper's setup (Adam, softmax-MSE loss).
  train::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = 50;
  topt.lr = 0.2;
  topt.seed = seed + 3;
  train::Trainer trainer(model, train_set, topt);
  for (const auto& st : trainer.run()) {
    std::printf("  epoch: loss %.4f, train acc %.3f\n", st.data_loss,
                st.train_accuracy);
  }

  // 4. Evaluate accuracy and the paper's roughness score R_overall.
  const double acc = train::evaluate_accuracy(model, test_set);
  const auto rough = roughness::report(model.phases());
  std::printf("test accuracy: %.3f\n", acc);
  std::printf("R_overall (before 2pi): %.2f\n", rough.overall);

  // 5. 2*pi smoothing: inference-invariant roughness reduction (§III-D2).
  const auto smoothed = smooth2pi::optimize_2pi_all(model.phases(), {});
  double after = 0.0;
  for (const auto& r : smoothed) after += r.roughness_after;
  after /= static_cast<double>(smoothed.size());
  std::printf("R_overall (after 2pi):  %.2f\n", after);

  std::vector<MatrixD> phases;
  for (const auto& r : smoothed) phases.push_back(r.optimized);
  model.set_phases(std::move(phases));
  std::printf("test accuracy after 2pi: %.3f (unchanged by construction)\n",
              train::evaluate_accuracy(model, test_set));
  return 0;
}
